#include "src/sla/dataflow.hpp"

#include <array>

#include "src/netlist/levelize.hpp"

namespace fcrit::sla {

using netlist::CellKind;
using netlist::Netlist;
using netlist::NodeId;

DataflowAnalysis DataflowAnalysis::run(const Netlist& nl) {
  DataflowAnalysis a;
  const std::size_t n = nl.num_nodes();
  a.values_.assign(n, Ternary::kX);
  a.link_to_.assign(n, netlist::kNoNode);
  a.link_opposite_.assign(n, 0);

  const netlist::Levelization lev = netlist::levelize(nl);

  // Sequential state: flip-flops reset to 0 (PackedSimulator::reset) and
  // widen with their D value until the reachable-state abstraction is
  // stable.
  std::vector<Ternary> ff_state(nl.flops().size(), Ternary::kZero);

  // Per-node resolved literal for the current pass (rebuilt every pass:
  // an equivalence learned under a narrow flop state can dissolve when
  // the state widens).
  std::vector<std::uint64_t> lit(n);

  std::array<Ternary, netlist::kMaxFanins> ins{};
  std::array<std::uint64_t, netlist::kMaxFanins> in_lits{};

  for (;;) {
    ++a.iterations_;
    // Seed sources for this pass.
    for (NodeId id = 0; id < n; ++id) {
      lit[id] = static_cast<std::uint64_t>(id) * 2;
      switch (nl.kind(id)) {
        case CellKind::kConst0: a.values_[id] = Ternary::kZero; break;
        case CellKind::kConst1: a.values_[id] = Ternary::kOne; break;
        case CellKind::kInput: a.values_[id] = Ternary::kX; break;
        default: break;
      }
    }
    for (std::size_t i = 0; i < nl.flops().size(); ++i)
      a.values_[nl.flops()[i]] = ff_state[i];

    // One topological combinational pass with implication learning.
    for (const NodeId id : lev.order) {
      const netlist::Node& node = nl.node(id);
      for (std::size_t i = 0; i < node.fanin_count; ++i) {
        ins[i] = a.values_[node.fanin[i]];
        in_lits[i] = lit[node.fanin[i]];
      }
      const std::span<const Ternary> in_span(ins.data(), node.fanin_count);
      const std::span<const std::uint64_t> lit_span(in_lits.data(),
                                                    node.fanin_count);
      const Ternary v = eval_ternary_related(node.kind, in_span, lit_span);
      a.values_[id] = v;
      a.link_to_[id] = netlist::kNoNode;
      a.link_opposite_[id] = 0;
      if (!is_definite(v)) {
        const int learned = learn_equivalence(node.kind, in_span, lit_span);
        if (learned >= 0) {
          const auto slot = static_cast<std::size_t>(learned / 2);
          const bool opposite = (learned & 1) != 0;
          a.link_to_[id] = node.fanin[slot];
          a.link_opposite_[id] = opposite ? 1 : 0;
          lit[id] = lit[node.fanin[slot]] ^ (opposite ? 1u : 0u);
        }
      }
    }

    // Widen flop state with the settled D values; stop at the fixpoint.
    bool changed = false;
    for (std::size_t i = 0; i < nl.flops().size(); ++i) {
      const NodeId d = nl.node(nl.flops()[i]).fanin[0];
      const Ternary widened = join(ff_state[i], a.values_[d]);
      if (widened != ff_state[i]) {
        ff_state[i] = widened;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Export the certificate: one fact per proved constant or equivalence.
  for (NodeId id = 0; id < n; ++id) {
    const CellKind kind = nl.kind(id);
    if (kind == CellKind::kInput) continue;
    if (is_definite(a.values_[id])) {
      Fact f;
      f.kind = Fact::Kind::kConst;
      f.node = id;
      f.value = a.values_[id];
      a.facts_.push_back(f);
      ++a.num_constants_;
    } else if (a.link_to_[id] != netlist::kNoNode) {
      Fact f;
      f.kind = Fact::Kind::kEquiv;
      f.node = id;
      f.other = a.link_to_[id];
      f.opposite = a.link_opposite_[id] != 0;
      a.facts_.push_back(f);
      ++a.num_equivalences_;
    }
  }
  return a;
}

std::uint64_t DataflowAnalysis::literal(NodeId id) const {
  std::uint64_t phase = 0;
  NodeId cur = id;
  while (link_to_[cur] != netlist::kNoNode) {
    phase ^= link_opposite_[cur];
    cur = link_to_[cur];
  }
  return static_cast<std::uint64_t>(cur) * 2 + phase;
}

namespace {

/// Enumerate the concrete fanin assignments of `node` consistent with the
/// checker's verified constants and equivalence links, calling `fn` on
/// each. Mirrors ternary.cpp's enumeration but runs entirely off the fact
/// database, not the analysis internals.
template <typename Fn>
bool for_each_checked(const Netlist& nl, NodeId id,
                      const std::vector<Ternary>& consts,
                      const std::vector<std::uint64_t>& lits, Fn&& fn) {
  const netlist::Node& node = nl.node(id);
  const int arity = node.fanin_count;
  bool any = false;
  for (unsigned assign = 0; assign < (1u << arity); ++assign) {
    bool ok = true;
    for (int i = 0; ok && i < arity; ++i) {
      const bool vi = (assign >> i) & 1u;
      const Ternary ci = consts[node.fanin[i]];
      if (is_definite(ci) && vi != definite_value(ci)) ok = false;
    }
    for (int i = 0; ok && i < arity; ++i) {
      for (int j = i + 1; ok && j < arity; ++j) {
        if ((lits[node.fanin[i]] >> 1) != (lits[node.fanin[j]] >> 1)) continue;
        const bool vi = (assign >> i) & 1u;
        const bool vj = (assign >> j) & 1u;
        const bool opposite =
            ((lits[node.fanin[i]] ^ lits[node.fanin[j]]) & 1u) != 0;
        if ((vi != vj) != opposite) ok = false;
      }
    }
    if (!ok) continue;
    any = true;
    std::array<bool, netlist::kMaxFanins> bits{};
    for (int i = 0; i < arity; ++i) bits[i] = (assign >> i) & 1u;
    if (!fn(std::span<const bool>(bits.data(), static_cast<std::size_t>(arity))))
      return false;
  }
  return any;
}

bool fail(std::string* why, const std::string& message) {
  if (why != nullptr) *why = message;
  return false;
}

}  // namespace

bool verify_facts(const Netlist& nl, const DataflowAnalysis& analysis,
                  std::string* why) {
  const std::size_t n = nl.num_nodes();

  // Rebuild the checker's own view of the certificate.
  std::vector<Ternary> consts(n, Ternary::kX);
  std::vector<NodeId> link_to(n, netlist::kNoNode);
  std::vector<std::uint8_t> link_opp(n, 0);
  for (const Fact& f : analysis.facts()) {
    if (f.node >= n) return fail(why, "fact names an out-of-range node");
    if (f.kind == Fact::Kind::kConst) {
      if (!is_definite(f.value))
        return fail(why, "constant fact without a definite value");
      consts[f.node] = f.value;
    } else {
      bool is_fanin = false;
      const netlist::Node& node = nl.node(f.node);
      for (std::size_t i = 0; i < node.fanin_count; ++i)
        is_fanin |= node.fanin[i] == f.other;
      if (!is_fanin)
        return fail(why, "equivalence fact does not point at a fanin of " +
                             nl.node(f.node).name);
      link_to[f.node] = f.other;
      link_opp[f.node] = f.opposite ? 1 : 0;
    }
  }

  // Resolve literals through the link forest. Links always point from a
  // node to one of its fanins, so chains terminate (the netlist is
  // combinationally acyclic) and every relation between two nets is
  // justified by facts at strictly lower levels — which is what makes the
  // simultaneous induction below well-founded.
  std::vector<std::uint64_t> lits(n);
  std::vector<std::uint8_t> resolved(n, 0);
  std::vector<NodeId> path;
  for (NodeId id = 0; id < n; ++id) {
    if (resolved[id]) continue;
    path.clear();
    NodeId cur = id;
    while (!resolved[cur] && link_to[cur] != netlist::kNoNode) {
      path.push_back(cur);
      cur = link_to[cur];
    }
    if (!resolved[cur]) {
      lits[cur] = static_cast<std::uint64_t>(cur) * 2;
      resolved[cur] = 1;
    }
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      lits[*it] = lits[link_to[*it]] ^ link_opp[*it];
      resolved[*it] = 1;
    }
  }

  // Check every fact locally as an inductive step.
  for (const Fact& f : analysis.facts()) {
    const CellKind kind = nl.kind(f.node);
    if (f.kind == Fact::Kind::kConst) {
      const bool v = definite_value(f.value);
      if (kind == CellKind::kConst0 || kind == CellKind::kConst1) {
        if (v != (kind == CellKind::kConst1))
          return fail(why, "constant cell fact with the wrong value at " +
                               nl.node(f.node).name);
        continue;
      }
      if (kind == CellKind::kInput)
        return fail(why, "constant fact on a primary input " + nl.node(f.node).name);
      if (kind == CellKind::kDff) {
        // Init value is 0, so a constant flop must claim 0 and its D input
        // must itself be proved constant 0.
        if (v) return fail(why, "flop claimed constant 1 at " + nl.node(f.node).name);
        const NodeId d = nl.node(f.node).fanin[0];
        if (consts[d] != Ternary::kZero)
          return fail(why, "constant-flop fact without a constant-0 D at " +
                               nl.node(f.node).name);
        continue;
      }
      bool holds = true;
      const bool any = for_each_checked(
          nl, f.node, consts, lits, [&](std::span<const bool> bits) {
            if (netlist::eval_bool(kind, bits) != v) holds = false;
            return holds;
          });
      if (!any)
        return fail(why, "constant fact with no consistent fanin assignment "
                         "at " + nl.node(f.node).name);
      if (!holds)
        return fail(why, "constant fact refuted by a fanin assignment at " +
                             nl.node(f.node).name);
    } else {
      if (kind == CellKind::kInput || kind == CellKind::kDff ||
          kind == CellKind::kConst0 || kind == CellKind::kConst1)
        return fail(why, "equivalence fact on a non-combinational node " +
                             nl.node(f.node).name);
      const netlist::Node& node = nl.node(f.node);
      std::size_t slot = netlist::kMaxFanins;
      for (std::size_t i = 0; i < node.fanin_count; ++i)
        if (node.fanin[i] == f.other) slot = i;
      bool holds = true;
      const bool any = for_each_checked(
          nl, f.node, consts, lits, [&](std::span<const bool> bits) {
            if (netlist::eval_bool(kind, bits) != (bits[slot] ^ f.opposite))
              holds = false;
            return holds;
          });
      if (!any)
        return fail(why, "equivalence fact with no consistent fanin "
                         "assignment at " + nl.node(f.node).name);
      if (!holds)
        return fail(why, "equivalence fact refuted by a fanin assignment at " +
                             nl.node(f.node).name);
    }
  }

  // Cross-check: every definite lattice value must be backed by a fact,
  // and agree with it (the triage pass consumes values(), the checker
  // validated facts — the two must be the same statement).
  for (NodeId id = 0; id < n; ++id) {
    if (nl.kind(id) == CellKind::kInput) continue;
    if (is_definite(analysis.value(id)) && consts[id] != analysis.value(id))
      return fail(why, "lattice value of " + nl.node(id).name +
                           " is not backed by a verified fact");
  }
  return true;
}

}  // namespace fcrit::sla
