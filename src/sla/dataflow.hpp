// Constant/implication propagation over the netlist graph IR.
//
// DataflowAnalysis::run computes, per node, a Ternary over-approximation
// of every value the node can take in any cycle of any workload:
//
//   * primary inputs start (and stay) X;
//   * constants hold their tied value;
//   * flip-flops start at the simulators' reset value (0) and widen with
//     the abstract value of their D input — the classic least-fixpoint
//     iteration through sequential state, which converges because the
//     lattice has height 2;
//   * combinational nodes apply the cell's exhaustive ternary transfer
//     function (src/sla/ternary.hpp).
//
// On top of the plain lattice runs a small implication engine: when a
// gate's output is proved equal (or antivalent) to one of its fanins —
// AND with the other fanin held 1, XOR with a constant side, a mux whose
// data inputs are already equivalent, ... — the two nets join one
// equivalence class (union-find with phase). Class relations feed back
// into the transfer functions, so patterns like XOR(a, a) = 0 or
// AND(a, !a) = 0 resolve to constants the local rules cannot see.
//
// Every conclusion is exported as a Fact: either "node holds constant v in
// every reachable cycle" or "node ≡ ±fanin in every cycle". The fact set
// forms a machine-checkable certificate — verify_facts() re-validates each
// fact locally (exhaustive enumeration over at most 16 fanin assignments)
// as one simultaneous inductive invariant, independent of the fixpoint
// code that produced it. docs/STATIC_ANALYSIS.md spells out the argument.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/netlist/netlist.hpp"
#include "src/sla/ternary.hpp"

namespace fcrit::sla {

/// One exported, independently checkable conclusion of the analysis.
struct Fact {
  enum class Kind : std::uint8_t {
    kConst,  // `node` holds `value` in every reachable cycle
    kEquiv,  // `node` equals `other` (xor `opposite`) in every cycle;
             // `other` is always a fanin of `node`
  };
  Kind kind = Kind::kConst;
  netlist::NodeId node = netlist::kNoNode;
  Ternary value = Ternary::kX;
  netlist::NodeId other = netlist::kNoNode;
  bool opposite = false;
};

class DataflowAnalysis {
 public:
  /// Run the fixpoint to convergence. Cost is O(iterations * edges) with
  /// iterations bounded by |flops| + 2 (each flop widens at most once).
  static DataflowAnalysis run(const netlist::Netlist& nl);

  Ternary value(netlist::NodeId id) const { return values_[id]; }
  const std::vector<Ternary>& values() const { return values_; }

  /// True (and *out set) when the node is proved constant.
  bool constant(netlist::NodeId id, bool* out) const {
    if (!is_definite(values_[id])) return false;
    if (out != nullptr) *out = definite_value(values_[id]);
    return true;
  }

  /// Literal of the node's equivalence-class representative:
  /// representative id * 2 + phase. Two nodes are proved equal iff their
  /// literals are identical, antivalent iff they differ only in bit 0.
  std::uint64_t literal(netlist::NodeId id) const;

  const std::vector<Fact>& facts() const { return facts_; }
  int iterations() const { return iterations_; }
  std::size_t num_constants() const { return num_constants_; }
  std::size_t num_equivalences() const { return num_equivalences_; }

 private:
  std::vector<Ternary> values_;
  // Direct equivalence links (node -> one of its fanins), the union-find
  // they generate, and the exported facts.
  std::vector<netlist::NodeId> link_to_;
  std::vector<std::uint8_t> link_opposite_;
  std::vector<Fact> facts_;
  int iterations_ = 0;
  std::size_t num_constants_ = 0;
  std::size_t num_equivalences_ = 0;
};

/// Independently re-check every exported fact against the netlist as one
/// simultaneous inductive invariant (see file comment), and cross-check
/// that every definite lattice value is backed by a fact. Returns false
/// and describes the first violation in *why (when non-null). Used by the
/// `diff_static_prune` oracle before any pruning decision is trusted.
bool verify_facts(const netlist::Netlist& nl, const DataflowAnalysis& analysis,
                  std::string* why);

}  // namespace fcrit::sla
