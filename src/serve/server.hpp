// The `fcrit serve` daemon: a POSIX-socket, line-oriented request/response
// front end over a ScoringEngine and a directory of model bundles.
//
// Wire protocol (one request per line; every response ends with a line
// holding a single "."):
//   SCORE [<bundle>] <netlist-path> [<top-n>]
//       <bundle> is a file name inside the bundle directory (".fcm"
//       appended when missing) or an absolute/relative path; it may be
//       omitted when the directory holds exactly one bundle. Replies
//       "OK design=... bundle=... nodes=N matched=0|1 top=K" followed by
//       K lines "<node> <proba> <class> <score>".
//   STATS
//       One "OK requests=... completed=... errors=... cache_hits=...
//       cache_misses=... queue_high_water=... threads=..." line.
//   METRICS
//       One line holding a JSON snapshot of the engine's registry: uptime,
//       request counters, cache hit ratio, queue depth, and the latency
//       histograms with p50/p90/p99 (see ScoringEngine::metrics_json and
//       docs/OBSERVABILITY.md).
//   QUIT
//       Replies "BYE" and closes the connection.
// Any failure replies "ERR <message>".
//
// stop() is a graceful shutdown: the listening socket closes first, then
// every connection's read side is shut down — requests already in flight
// still compute and write their responses before the threads are joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/serve/engine.hpp"

namespace fcrit::serve {

struct ServerConfig {
  std::string bundle_dir;
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see Server::port).
  std::uint16_t port = 7333;
  int default_top = 10;
};

class Server {
 public:
  Server(ScoringEngine& engine, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen and start the acceptor thread; throws std::runtime_error
  /// on socket failure.
  void start();

  /// The actually-bound port (resolves port 0).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Graceful shutdown: stop accepting, drain in-flight requests, join.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Process one protocol line (without the newline) into a full response
  /// (terminator included). Public so tests can drive the protocol
  /// without sockets.
  std::string handle_line(const std::string& line);

 private:
  void accept_loop();
  void connection_loop(int fd);
  std::string resolve_bundle(const std::string& token) const;

  ScoringEngine& engine_;
  ServerConfig config_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::unordered_set<int> conn_fds_;
};

}  // namespace fcrit::serve
