// The `fcrit serve` daemon: a line-protocol front end (src/serve/
// line_server.hpp) over ONE ScoringEngine and a directory of model
// bundles. The multi-shard variant lives in src/fleet/fleet_server.hpp.
//
// Wire protocol (one request per line; every response ends with a line
// holding a single "."):
//   SCORE [<bundle>] <netlist-path> [<top-n>] [id=<n>]
//       <bundle> is a file name inside the bundle directory (".fcm"
//       appended when missing) or an absolute/relative path; it may be
//       omitted when the directory holds exactly one bundle. id=<n>
//       supplies the client's own trace id (decimal). Replies
//       "OK design=... bundle=... nodes=N matched=0|1 top=K [trace=<id>]"
//       followed by K lines "<node> <proba> <class> <score>".
//   STATS
//       One "OK requests=... completed=... errors=... cache_hits=...
//       cache_misses=... queue_high_water=... threads=..." line.
//   METRICS
//       One line holding a JSON snapshot: the shared "server" object
//       (uptime, trace-ring occupancy, exporter lag — serve::LineServer)
//       merged with the engine's registry snapshot (request counters,
//       cache hit ratio, queue depth, latency histograms with p50/p90/p99;
//       see ScoringEngine::metrics_json and docs/OBSERVABILITY.md).
//   METRICS PROM
//       The same registry in Prometheus text exposition format.
//   TRACE <id> | TRACE LAST <n>
//       One completed request trace as JSON / the n most recent ones.
//   QUIT
//       Replies "BYE" and closes the connection.
// Any failure replies "ERR <message>".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/engine.hpp"
#include "src/serve/line_server.hpp"

namespace fcrit::serve {

/// A parsed SCORE request line. The shared grammar of serve::Server and
/// fleet::FleetServer: SCORE [<bundle>] <netlist-path> [<top-n>] [id=<n>],
/// where a trailing integer is the top-n, a lone path-like argument means
/// "the directory's only bundle" (empty bundle_token), and an id= token
/// anywhere supplies the client's own decimal trace id.
struct ScoreRequest {
  std::string bundle_token;  // empty = sole bundle in the directory
  std::string target;
  int top = 10;
  std::uint64_t trace_id = 0;  // client-supplied id= token; 0 = none
};

/// Parse the tokens after the SCORE verb; throws std::runtime_error with
/// a usage message on malformed input.
ScoreRequest parse_score_request(const std::vector<std::string>& args,
                                 int default_top);

/// Map a SCORE bundle token to a bundle file: a token containing '/' is a
/// path, anything else names a file in `bundle_dir` (".fcm" appended when
/// missing); an empty token selects the directory's only *.fcm. Throws
/// std::runtime_error when nothing (or more than one thing) matches.
std::string resolve_bundle_token(const std::string& bundle_dir,
                                 const std::string& token);

/// The "OK design=... top=K" header plus K ranked site lines and the
/// protocol terminator.
std::string format_score_response(const ScoreResult& result, int top);

struct ServerConfig {
  std::string bundle_dir;
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 7333;
  int default_top = 10;
};

class Server : public LineServer {
 public:
  Server(ScoringEngine& engine, ServerConfig config);
  ~Server() override;

  std::string handle_line(const std::string& line) override;

 private:
  ScoringEngine& engine_;
  ServerConfig config_;
};

}  // namespace fcrit::serve
