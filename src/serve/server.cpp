#include "src/serve/server.hpp"

#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "src/obs/request_trace.hpp"
#include "src/util/text.hpp"

namespace fcrit::serve {

ScoreRequest parse_score_request(const std::vector<std::string>& args,
                                 int default_top) {
  // SCORE [<bundle>] <netlist-path> [<top-n>] [id=<n>]: a trailing
  // integer is the top-n; one path-like argument means "the directory's
  // only bundle"; an id= token anywhere is the client's own trace id.
  std::vector<std::string> rest;
  ScoreRequest req;
  req.top = default_top;
  for (const std::string& arg : args) {
    if (arg.rfind("id=", 0) == 0) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(arg.c_str() + 3, &end, 10);
      if (end == nullptr || *end != '\0' || v == 0)
        throw std::runtime_error("bad trace id '" + arg +
                                 "' (want id=<nonzero decimal>)");
      req.trace_id = static_cast<std::uint64_t>(v);
      continue;
    }
    rest.push_back(arg);
  }
  if (rest.size() >= 2) {
    std::size_t parsed = 0;
    try {
      const int n = std::stoi(rest.back(), &parsed);
      if (parsed == rest.back().size()) {
        req.top = n;
        rest.pop_back();
      }
    } catch (const std::exception&) {
    }
  }
  if (rest.empty() || rest.size() > 2)
    throw std::runtime_error("usage: SCORE [<bundle>] <netlist-path> [<top-n>]");
  if (rest.size() == 2) {
    req.bundle_token = rest[0];
    req.target = rest[1];
  } else {
    req.target = rest[0];
  }
  return req;
}

std::string resolve_bundle_token(const std::string& bundle_dir,
                                 const std::string& token) {
  namespace fs = std::filesystem;
  if (token.empty()) {
    std::vector<std::string> bundles;
    for (const auto& entry : fs::directory_iterator(bundle_dir))
      if (entry.is_regular_file() && entry.path().extension() == ".fcm")
        bundles.push_back(entry.path().string());
    if (bundles.size() != 1)
      throw std::runtime_error(
          std::to_string(bundles.size()) +
          " bundles in directory; name one: SCORE <bundle> <path>");
    return bundles[0];
  }
  std::vector<std::string> candidates;
  if (token.find('/') != std::string::npos) {
    candidates = {token};
  } else {
    candidates.push_back(bundle_dir + "/" + token);
    if (!util::ends_with(token, ".fcm"))
      candidates.push_back(bundle_dir + "/" + token + ".fcm");
  }
  for (const auto& path : candidates)
    if (fs::is_regular_file(path)) return path;
  throw std::runtime_error("no bundle '" + token + "' in " + bundle_dir);
}

std::string format_score_response(const ScoreResult& r, int top) {
  const auto ranked = top_sites(r, top);
  std::ostringstream os;
  os.precision(6);
  os << "OK design=" << r.target_name << " bundle=" << r.bundle_design
     << " nodes=" << r.node_names.size()
     << " matched=" << (r.netlist_matched ? 1 : 0)
     << " top=" << ranked.size();
  if (r.trace_id != 0) os << " trace=" << r.trace_id;
  os << "\n";
  for (const auto id : ranked)
    os << r.node_names[id] << " " << r.proba[id] << " "
       << r.predicted[id] << " " << r.score[id] << "\n";
  os << ".\n";
  return os.str();
}

Server::Server(ScoringEngine& engine, ServerConfig config)
    : LineServer(config.port), engine_(engine), config_(std::move(config)) {
  // The TRACE verb and METRICS trace_ring field read the engine's
  // collector when one was wired into EngineConfig (the CLI does both).
  set_trace_collector(engine_.trace_collector());
}

Server::~Server() {
  // Drain connections before engine_/config_ go away (the base dtor would
  // be too late: handle_line runs on connection threads).
  stop();
}

std::string Server::handle_line(const std::string& line) {
  const std::vector<std::string> tokens = util::split_ws(line);
  if (tokens.empty()) return error_response("empty request");
  const std::string& verb = tokens[0];

  if (verb == "QUIT") return "BYE\n.\n";

  if (verb == "METRICS") {
    if (tokens.size() > 1 && tokens[1] == "PROM")
      return prom_response({obs::PromSource{"", &engine_.metrics_registry()}});
    return metrics_response(engine_.metrics_json());
  }

  if (verb == "TRACE")
    return trace_response({tokens.begin() + 1, tokens.end()});

  if (verb == "STATS") {
    const MetricsSnapshot m = engine_.metrics();
    std::ostringstream os;
    os << "OK requests=" << m.requests << " completed=" << m.completed
       << " errors=" << m.errors << " cache_hits=" << m.cache_hits
       << " cache_misses=" << m.cache_misses
       << " queue_high_water=" << m.queue_high_water
       << " threads=" << engine_.config().threads << "\n.\n";
    return os.str();
  }

  if (verb == "SCORE") {
    obs::RequestTraceCollector* tc = trace_collector();
    std::uint64_t trace_id = 0;
    try {
      const ScoreRequest req = parse_score_request(
          {tokens.begin() + 1, tokens.end()}, config_.default_top);
      const std::string bundle_path =
          resolve_bundle_token(config_.bundle_dir, req.bundle_token);
      ScoreOptions opts;
      if (tc)
        trace_id = opts.trace_id =
            tc->begin(bundle_path, req.target, req.trace_id);
      const ScoreResult r =
          engine_.submit(bundle_path, req.target, opts).get();
      if (tc) tc->finish(trace_id, "ok");
      return format_score_response(r, req.top);
    } catch (const std::exception& e) {
      if (tc) tc->finish(trace_id, "error", e.what());
      return error_response(e.what());
    }
  }

  return error_response("unknown command '" + verb +
                        "' (SCORE, STATS, METRICS, TRACE, QUIT)");
}

}  // namespace fcrit::serve
