#include "src/serve/server.hpp"

#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "src/util/text.hpp"

namespace fcrit::serve {

ScoreRequest parse_score_request(const std::vector<std::string>& args,
                                 int default_top) {
  // SCORE [<bundle>] <netlist-path> [<top-n>]: a trailing integer is the
  // top-n; one path-like argument means "the directory's only bundle".
  std::vector<std::string> rest = args;
  ScoreRequest req;
  req.top = default_top;
  if (rest.size() >= 2) {
    std::size_t parsed = 0;
    try {
      const int n = std::stoi(rest.back(), &parsed);
      if (parsed == rest.back().size()) {
        req.top = n;
        rest.pop_back();
      }
    } catch (const std::exception&) {
    }
  }
  if (rest.empty() || rest.size() > 2)
    throw std::runtime_error("usage: SCORE [<bundle>] <netlist-path> [<top-n>]");
  if (rest.size() == 2) {
    req.bundle_token = rest[0];
    req.target = rest[1];
  } else {
    req.target = rest[0];
  }
  return req;
}

std::string resolve_bundle_token(const std::string& bundle_dir,
                                 const std::string& token) {
  namespace fs = std::filesystem;
  if (token.empty()) {
    std::vector<std::string> bundles;
    for (const auto& entry : fs::directory_iterator(bundle_dir))
      if (entry.is_regular_file() && entry.path().extension() == ".fcm")
        bundles.push_back(entry.path().string());
    if (bundles.size() != 1)
      throw std::runtime_error(
          std::to_string(bundles.size()) +
          " bundles in directory; name one: SCORE <bundle> <path>");
    return bundles[0];
  }
  std::vector<std::string> candidates;
  if (token.find('/') != std::string::npos) {
    candidates = {token};
  } else {
    candidates.push_back(bundle_dir + "/" + token);
    if (!util::ends_with(token, ".fcm"))
      candidates.push_back(bundle_dir + "/" + token + ".fcm");
  }
  for (const auto& path : candidates)
    if (fs::is_regular_file(path)) return path;
  throw std::runtime_error("no bundle '" + token + "' in " + bundle_dir);
}

std::string format_score_response(const ScoreResult& r, int top) {
  const auto ranked = top_sites(r, top);
  std::ostringstream os;
  os.precision(6);
  os << "OK design=" << r.target_name << " bundle=" << r.bundle_design
     << " nodes=" << r.node_names.size()
     << " matched=" << (r.netlist_matched ? 1 : 0)
     << " top=" << ranked.size() << "\n";
  for (const auto id : ranked)
    os << r.node_names[id] << " " << r.proba[id] << " "
       << r.predicted[id] << " " << r.score[id] << "\n";
  os << ".\n";
  return os.str();
}

Server::Server(ScoringEngine& engine, ServerConfig config)
    : LineServer(config.port), engine_(engine), config_(std::move(config)) {}

Server::~Server() {
  // Drain connections before engine_/config_ go away (the base dtor would
  // be too late: handle_line runs on connection threads).
  stop();
}

std::string Server::handle_line(const std::string& line) {
  const std::vector<std::string> tokens = util::split_ws(line);
  if (tokens.empty()) return error_response("empty request");
  const std::string& verb = tokens[0];

  if (verb == "QUIT") return "BYE\n.\n";

  if (verb == "METRICS") return engine_.metrics_json() + "\n.\n";

  if (verb == "STATS") {
    const MetricsSnapshot m = engine_.metrics();
    std::ostringstream os;
    os << "OK requests=" << m.requests << " completed=" << m.completed
       << " errors=" << m.errors << " cache_hits=" << m.cache_hits
       << " cache_misses=" << m.cache_misses
       << " queue_high_water=" << m.queue_high_water
       << " threads=" << engine_.config().threads << "\n.\n";
    return os.str();
  }

  if (verb == "SCORE") {
    try {
      const ScoreRequest req = parse_score_request(
          {tokens.begin() + 1, tokens.end()}, config_.default_top);
      const std::string bundle_path =
          resolve_bundle_token(config_.bundle_dir, req.bundle_token);
      const ScoreResult r = engine_.submit(bundle_path, req.target).get();
      return format_score_response(r, req.top);
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }

  return error_response("unknown command '" + verb +
                        "' (SCORE, STATS, METRICS, QUIT)");
}

}  // namespace fcrit::serve
