#include "src/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <stdexcept>

#include "src/util/text.hpp"

namespace fcrit::serve {

namespace {

void send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing sensible to do
    sent += static_cast<std::size_t>(n);
  }
}

std::string error_response(const std::string& message) {
  return "ERR " + message + "\n.\n";
}

}  // namespace

Server::Server(ScoringEngine& engine, ServerConfig config)
    : engine_(engine), config_(std::move(config)) {}

Server::~Server() { stop(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind 127.0.0.1:" +
                             std::to_string(config_.port) + ": " + reason);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + reason);
  }
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listening socket gone
    }
    std::lock_guard<std::mutex> lock(conn_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void Server::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // peer closed, or stop() shut our read side down
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (util::trim(line).empty()) continue;
    const std::string verb = util::split_ws(line)[0];
    send_all(fd, handle_line(line));
    if (verb == "QUIT" || stopping_.load()) open = false;
  }
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

std::string Server::resolve_bundle(const std::string& token) const {
  namespace fs = std::filesystem;
  std::vector<std::string> candidates;
  if (token.find('/') != std::string::npos) {
    candidates = {token};
  } else {
    candidates.push_back(config_.bundle_dir + "/" + token);
    if (!util::ends_with(token, ".fcm"))
      candidates.push_back(config_.bundle_dir + "/" + token + ".fcm");
  }
  for (const auto& path : candidates)
    if (fs::is_regular_file(path)) return path;
  throw std::runtime_error("no bundle '" + token + "' in " +
                           config_.bundle_dir);
}

std::string Server::handle_line(const std::string& line) {
  const std::vector<std::string> tokens = util::split_ws(line);
  if (tokens.empty()) return error_response("empty request");
  const std::string& verb = tokens[0];

  if (verb == "QUIT") return "BYE\n.\n";

  if (verb == "METRICS") return engine_.metrics_json() + "\n.\n";

  if (verb == "STATS") {
    const MetricsSnapshot m = engine_.metrics();
    std::ostringstream os;
    os << "OK requests=" << m.requests << " completed=" << m.completed
       << " errors=" << m.errors << " cache_hits=" << m.cache_hits
       << " cache_misses=" << m.cache_misses
       << " queue_high_water=" << m.queue_high_water
       << " threads=" << engine_.config().threads << "\n.\n";
    return os.str();
  }

  if (verb == "SCORE") {
    try {
      // SCORE [<bundle>] <netlist-path> [<top-n>]: a trailing integer is
      // the top-n; one path-like argument means "the directory's only
      // bundle".
      std::vector<std::string> args(tokens.begin() + 1, tokens.end());
      int top = config_.default_top;
      if (args.size() >= 2) {
        std::size_t parsed = 0;
        try {
          const int n = std::stoi(args.back(), &parsed);
          if (parsed == args.back().size()) {
            top = n;
            args.pop_back();
          }
        } catch (const std::exception&) {
        }
      }
      if (args.empty() || args.size() > 2)
        return error_response(
            "usage: SCORE [<bundle>] <netlist-path> [<top-n>]");
      std::string bundle_path;
      std::string target;
      if (args.size() == 2) {
        bundle_path = resolve_bundle(args[0]);
        target = args[1];
      } else {
        namespace fs = std::filesystem;
        std::vector<std::string> bundles;
        for (const auto& entry : fs::directory_iterator(config_.bundle_dir))
          if (entry.is_regular_file() && entry.path().extension() == ".fcm")
            bundles.push_back(entry.path().string());
        if (bundles.size() != 1)
          return error_response(
              std::to_string(bundles.size()) +
              " bundles in directory; name one: SCORE <bundle> <path>");
        bundle_path = bundles[0];
        target = args[0];
      }

      const ScoreResult r = engine_.submit(bundle_path, target).get();
      const auto ranked = top_sites(r, top);
      std::ostringstream os;
      os.precision(6);
      os << "OK design=" << r.target_name << " bundle=" << r.bundle_design
         << " nodes=" << r.node_names.size()
         << " matched=" << (r.netlist_matched ? 1 : 0)
         << " top=" << ranked.size() << "\n";
      for (const auto id : ranked)
        os << r.node_names[id] << " " << r.proba[id] << " "
           << r.predicted[id] << " " << r.score[id] << "\n";
      os << ".\n";
      return os.str();
    } catch (const std::exception& e) {
      return error_response(e.what());
    }
  }

  return error_response("unknown command '" + verb +
                        "' (SCORE, STATS, METRICS, QUIT)");
}

void Server::stop() {
  if (!running_.load() && listen_fd_ < 0) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Wake connections parked in recv(); their writes still complete, so
    // in-flight requests are answered before the threads exit.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  running_.store(false);
}

}  // namespace fcrit::serve
