// Model-artifact bundles: everything the inference path needs, in one
// self-describing file (.fcm).
//
// A bundle packages the trained GCN classifier, the optional §3.4
// regressor, the feature Standardizer, the stimulus profiles the golden
// statistics were estimated under, and a manifest (design name, netlist
// content hash, the PipelineConfig provenance the score path must replay,
// format version). Loading validates strictly: a wrong magic/version,
// truncated section, or a feature-width disagreement between manifest,
// standardizer and models raises a typed BundleError instead of producing
// a silently-wrong model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/graphir/features.hpp"
#include "src/ml/gcn.hpp"
#include "src/netlist/netlist.hpp"
#include "src/sim/stimulus.hpp"

namespace fcrit::serve {

inline constexpr int kBundleFormatVersion = 1;

enum class BundleErrorCode {
  kIo,                    // file unreadable / unwritable
  kBadMagic,              // not a bundle at all
  kBadVersion,            // bundle from a different format version
  kMalformed,             // header parsed but a field is inconsistent
  kTruncated,             // stream ended inside a section
  kFeatureWidthMismatch,  // manifest vs standardizer vs model widths
  kNetlistHashMismatch,   // strict scoring of a netlist the bundle was
                          // not trained on
};

std::string_view to_string(BundleErrorCode code);

class BundleError : public std::runtime_error {
 public:
  BundleError(BundleErrorCode code, const std::string& message);
  BundleErrorCode code() const { return code_; }

 private:
  BundleErrorCode code_;
};

struct BundleManifest {
  int format_version = kBundleFormatVersion;
  std::string design_name;
  /// netlist_content_hash() of the training netlist.
  std::uint64_t netlist_hash = 0;
  int feature_width = 0;
  std::vector<std::string> feature_names;

  // PipelineConfig provenance: the score path replays the golden
  // simulation with exactly these parameters so features (and therefore
  // predictions) are bit-identical to the training-time pipeline.
  int probability_cycles = 0;
  std::uint64_t probability_seed = 0;
  double criticality_threshold = 0.5;
};

struct ModelBundle {
  BundleManifest manifest;
  sim::StimulusSpec stimulus;
  graphir::Standardizer standardizer;
  std::unique_ptr<ml::GcnModel> classifier;
  std::unique_ptr<ml::GcnModel> regressor;  // null when not trained
};

/// FNV-1a 64-bit hash of a byte string.
std::uint64_t fnv1a64(std::string_view bytes);

/// Canonical content hash of a netlist: FNV-1a over its structural-Verilog
/// emission, so the hash is stable across export→parse round-trips and
/// independent of the on-disk container (.v vs in-memory).
std::uint64_t netlist_content_hash(const netlist::Netlist& nl);

/// Package the trained artifacts of a pipeline run. Requires result.gcn;
/// the regressor is included when present.
ModelBundle pack_bundle(const core::PipelineResult& result);

void save_bundle(const ModelBundle& bundle, std::ostream& os);
void save_bundle_file(const ModelBundle& bundle, const std::string& path);

/// Strict-validation load; throws BundleError on any inconsistency.
ModelBundle load_bundle(std::istream& is);
ModelBundle load_bundle_file(const std::string& path);

}  // namespace fcrit::serve
