#include "src/serve/bundle.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

#include "src/ml/serialize.hpp"
#include "src/netlist/verilog_parser.hpp"
#include "src/netlist/verilog_writer.hpp"
#include "src/util/text.hpp"

namespace fcrit::serve {

namespace {

constexpr const char* kMagicPrefix = "fcrit-bundle-v";

std::string magic_line() {
  return std::string(kMagicPrefix) + std::to_string(kBundleFormatVersion);
}

[[noreturn]] void fail(BundleErrorCode code, const std::string& detail) {
  throw BundleError(code, detail);
}

/// Rest-of-line string field (names may contain spaces).
std::string read_line_field(std::istream& is) {
  std::string value;
  std::getline(is >> std::ws, value);
  return std::string(util::trim(value));
}

void write_profile(std::ostream& os, const sim::InputProfile& p) {
  os << p.p1 << " " << p.hold_cycles << " " << (p.hold_value ? 1 : 0);
}

sim::InputProfile read_profile(std::istream& is) {
  sim::InputProfile p;
  int hold_value = 0;
  is >> p.p1 >> p.hold_cycles >> hold_value;
  p.hold_value = hold_value != 0;
  return p;
}

}  // namespace

std::string_view to_string(BundleErrorCode code) {
  switch (code) {
    case BundleErrorCode::kIo: return "io-error";
    case BundleErrorCode::kBadMagic: return "bad-magic";
    case BundleErrorCode::kBadVersion: return "bad-version";
    case BundleErrorCode::kMalformed: return "malformed";
    case BundleErrorCode::kTruncated: return "truncated";
    case BundleErrorCode::kFeatureWidthMismatch:
      return "feature-width-mismatch";
    case BundleErrorCode::kNetlistHashMismatch:
      return "netlist-hash-mismatch";
  }
  return "unknown";
}

BundleError::BundleError(BundleErrorCode code, const std::string& message)
    : std::runtime_error("bundle [" + std::string(to_string(code)) + "] " +
                         message),
      code_(code) {}

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t netlist_content_hash(const netlist::Netlist& nl) {
  // One export→parse round-trip first: the parser's node order is a fixed
  // point of to_verilog, the builders' is not, so hashing the canonical
  // form makes hash(design) == hash(parse(exported .v file)).
  return fnv1a64(
      netlist::to_verilog(netlist::parse_verilog(netlist::to_verilog(nl))));
}

ModelBundle pack_bundle(const core::PipelineResult& result) {
  if (!result.gcn)
    fail(BundleErrorCode::kMalformed, "pack: pipeline result has no GCN");
  ModelBundle b;
  b.manifest.design_name = result.design.name;
  b.manifest.netlist_hash = netlist_content_hash(result.design.netlist);
  b.manifest.feature_width = result.features.cols();
  b.manifest.feature_names = graphir::base_feature_names();
  b.manifest.probability_cycles = result.config.probability_cycles;
  b.manifest.probability_seed = result.config.probability_seed;
  b.manifest.criticality_threshold = result.config.criticality_threshold;
  b.stimulus = result.design.stimulus;
  b.standardizer = result.standardizer;
  b.classifier = std::make_unique<ml::GcnModel>(ml::clone_gcn(*result.gcn));
  if (result.regressor)
    b.regressor =
        std::make_unique<ml::GcnModel>(ml::clone_gcn(*result.regressor));
  return b;
}

void save_bundle(const ModelBundle& bundle, std::ostream& os) {
  const BundleManifest& m = bundle.manifest;
  os << magic_line() << "\n";
  os << "design " << m.design_name << "\n";
  os << "netlist_hash " << std::hex << m.netlist_hash << std::dec << "\n";
  os << "probability_cycles " << m.probability_cycles << "\n";
  os << "probability_seed " << m.probability_seed << "\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "criticality_threshold " << m.criticality_threshold << "\n";
  os << "feature_width " << m.feature_width << "\n";
  for (const auto& name : m.feature_names) os << "feature " << name << "\n";

  const sim::StimulusSpec& s = bundle.stimulus;
  os << "stimulus\n";
  os << "activity " << s.activity_min << " " << s.activity_max << "\n";
  os << "p1_scale " << s.p1_scale_min << " " << s.p1_scale_max << "\n";
  os << "default_profile ";
  write_profile(os, s.default_profile);
  os << "\n";
  // Sorted so identical bundles serialize to identical bytes (the serve
  // cache keys on file content).
  std::vector<std::string> names;
  names.reserve(s.profiles.size());
  for (const auto& [name, _] : s.profiles) names.push_back(name);
  std::sort(names.begin(), names.end());
  os << "profiles " << names.size() << "\n";
  for (const auto& name : names) {
    os << name << " ";
    write_profile(os, s.profiles.at(name));
    os << "\n";
  }

  os << "standardizer\n";
  ml::save_standardizer(bundle.standardizer, os);
  os << "classifier\n";
  ml::save_gcn(*bundle.classifier, os);
  os << "regressor " << (bundle.regressor ? 1 : 0) << "\n";
  if (bundle.regressor) ml::save_gcn(*bundle.regressor, os);
  os << "end\n";
}

void save_bundle_file(const ModelBundle& bundle, const std::string& path) {
  std::ofstream os(path);
  if (!os) fail(BundleErrorCode::kIo, "cannot open " + path + " for write");
  save_bundle(bundle, os);
  if (!os) fail(BundleErrorCode::kIo, "short write to " + path);
}

ModelBundle load_bundle(std::istream& is) {
  std::string magic;
  is >> magic;
  if (!is || !util::starts_with(magic, kMagicPrefix)) {
    if (util::starts_with(magic, "fcrit-"))
      fail(BundleErrorCode::kBadMagic,
           "'" + magic + "' is a different fcrit artifact, not a bundle");
    fail(BundleErrorCode::kBadMagic, "not a model bundle");
  }
  if (magic != magic_line())
    fail(BundleErrorCode::kBadVersion,
         "got " + magic + ", this build reads " + magic_line());

  ModelBundle b;
  BundleManifest& m = b.manifest;
  try {
    ml::expect_token(is, "design");
    m.design_name = read_line_field(is);
    ml::expect_token(is, "netlist_hash");
    is >> std::hex >> m.netlist_hash >> std::dec;
    ml::expect_token(is, "probability_cycles");
    is >> m.probability_cycles;
    ml::expect_token(is, "probability_seed");
    is >> m.probability_seed;
    ml::expect_token(is, "criticality_threshold");
    is >> m.criticality_threshold;
    ml::expect_token(is, "feature_width");
    is >> m.feature_width;
    if (!is || m.feature_width <= 0)
      fail(BundleErrorCode::kMalformed, "bad feature_width");
    for (int i = 0; i < m.feature_width; ++i) {
      ml::expect_token(is, "feature");
      m.feature_names.push_back(read_line_field(is));
    }

    ml::expect_token(is, "stimulus");
    sim::StimulusSpec& s = b.stimulus;
    ml::expect_token(is, "activity");
    is >> s.activity_min >> s.activity_max;
    ml::expect_token(is, "p1_scale");
    is >> s.p1_scale_min >> s.p1_scale_max;
    ml::expect_token(is, "default_profile");
    s.default_profile = read_profile(is);
    ml::expect_token(is, "profiles");
    std::size_t num_profiles = 0;
    is >> num_profiles;
    if (!is) fail(BundleErrorCode::kTruncated, "stimulus section");
    for (std::size_t i = 0; i < num_profiles; ++i) {
      std::string name;
      is >> name;
      s.profiles[name] = read_profile(is);
    }

    ml::expect_token(is, "standardizer");
    b.standardizer = ml::load_standardizer(is);
    ml::expect_token(is, "classifier");
    b.classifier = std::make_unique<ml::GcnModel>(ml::load_gcn(is));
    ml::expect_token(is, "regressor");
    int has_regressor = 0;
    is >> has_regressor;
    if (has_regressor)
      b.regressor = std::make_unique<ml::GcnModel>(ml::load_gcn(is));
    if (!is) fail(BundleErrorCode::kTruncated, "model section");
    std::string trailer;
    is >> trailer;
    if (trailer != "end")
      fail(BundleErrorCode::kTruncated, "missing end marker");
  } catch (const BundleError&) {
    throw;
  } catch (const std::exception& e) {
    // ml::serialize throws plain runtime_errors; a mid-section failure on
    // an otherwise well-formed bundle means the stream ended early.
    fail(is.eof() ? BundleErrorCode::kTruncated : BundleErrorCode::kMalformed,
         e.what());
  }

  const int width = m.feature_width;
  if (static_cast<int>(b.standardizer.mean.size()) != width ||
      static_cast<int>(b.standardizer.stddev.size()) != width)
    fail(BundleErrorCode::kFeatureWidthMismatch,
         "standardizer width " + std::to_string(b.standardizer.mean.size()) +
             " vs manifest " + std::to_string(width));
  if (b.classifier->in_features() != width)
    fail(BundleErrorCode::kFeatureWidthMismatch,
         "classifier expects " + std::to_string(b.classifier->in_features()) +
             " features, manifest declares " + std::to_string(width));
  if (b.regressor && b.regressor->in_features() != width)
    fail(BundleErrorCode::kFeatureWidthMismatch,
         "regressor expects " + std::to_string(b.regressor->in_features()) +
             " features, manifest declares " + std::to_string(width));
  return b;
}

ModelBundle load_bundle_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) fail(BundleErrorCode::kIo, "cannot open " + path);
  return load_bundle(is);
}

}  // namespace fcrit::serve
