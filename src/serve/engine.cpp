#include "src/serve/engine.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/fault/fault.hpp"
#include "src/graphir/graph.hpp"
#include "src/lint/lint.hpp"
#include "src/ml/serialize.hpp"
#include "src/obs/json.hpp"
#include "src/netlist/bench_format.hpp"
#include "src/netlist/verilog_parser.hpp"
#include "src/sim/probability.hpp"
#include "src/util/text.hpp"
#include "src/util/timer.hpp"

namespace fcrit::serve {

namespace {

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw BundleError(BundleErrorCode::kIo, "cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return std::move(buffer).str();
}

// Per-thread cache of model clones, keyed by bundle identity. The pin
// keeps the bundle alive while its clones are cached, which also
// guarantees the key pointer is never recycled for a different bundle.
// Capacity is tiny (a worker rarely alternates between more than a few
// bundles); eviction is LRU by position.
struct ThreadClones {
  struct Entry {
    std::shared_ptr<const ModelBundle> pin;
    std::unique_ptr<ml::GcnModel> classifier;
    std::unique_ptr<ml::GcnModel> regressor;  // null when the bundle has none
  };
  static constexpr std::size_t kCapacity = 4;
  std::vector<Entry> entries;  // front = most recently used

  Entry& get(const std::shared_ptr<const ModelBundle>& bundle,
             obs::Counter& hits, obs::Counter& misses) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].pin.get() == bundle.get()) {
        if (i != 0) std::rotate(entries.begin(), entries.begin() + i,
                                entries.begin() + i + 1);
        hits.add();
        return entries.front();
      }
    }
    misses.add();
    Entry e;
    e.pin = bundle;
    e.classifier =
        std::make_unique<ml::GcnModel>(ml::clone_gcn(*bundle->classifier));
    if (bundle->regressor)
      e.regressor =
          std::make_unique<ml::GcnModel>(ml::clone_gcn(*bundle->regressor));
    entries.insert(entries.begin(), std::move(e));
    if (entries.size() > kCapacity) entries.pop_back();
    return entries.front();
  }
};

thread_local ThreadClones t_clones;

}  // namespace

std::shared_ptr<const ModelBundle> BundleCache::get(const std::string& path) {
  const std::string bytes = read_file_bytes(path);
  const std::uint64_t key = fnv1a64(bytes);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_->add();
      return lru_.front().second;
    }
  }
  misses_->add();
  // Parse outside the lock: concurrent first-touch requests may duplicate
  // the work, but never block each other behind a cold load.
  std::istringstream is(bytes);
  auto bundle = std::make_shared<const ModelBundle>(load_bundle(is));
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().second;  // another thread won the race
  }
  lru_.emplace_front(key, bundle);
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return bundle;
}

std::size_t BundleCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::vector<netlist::NodeId> top_sites(const ScoreResult& result, int n) {
  std::vector<netlist::NodeId> ranked = result.sites;
  std::sort(ranked.begin(), ranked.end(),
            [&](netlist::NodeId a, netlist::NodeId b) {
              if (result.score[a] != result.score[b])
                return result.score[a] > result.score[b];
              return a < b;  // deterministic tie-break
            });
  if (n > 0 && ranked.size() > static_cast<std::size_t>(n))
    ranked.resize(static_cast<std::size_t>(n));
  return ranked;
}

designs::Design load_score_target(const std::string& arg) {
  const bool is_file =
      util::ends_with(arg, ".v") || util::ends_with(arg, ".bench");
  if (!is_file) return designs::build_design(arg);
  std::ifstream in(arg);
  if (!in) throw std::runtime_error("cannot open " + arg);
  designs::Design d;
  d.name = arg;
  d.netlist = util::ends_with(arg, ".bench") ? netlist::parse_bench(in)
                                             : netlist::parse_verilog(in);
  return d;
}

ScoringEngine::ScoringEngine(EngineConfig config)
    : config_(config),
      cache_(std::max<std::size_t>(1, config.cache_capacity),
             &registry_.counter("serve.cache_hits"),
             &registry_.counter("serve.cache_misses")),
      started_(std::chrono::steady_clock::now()),
      requests_(&registry_.counter("serve.requests")),
      completed_(&registry_.counter("serve.completed")),
      errors_(&registry_.counter("serve.errors")),
      clone_hits_(&registry_.counter("serve.model_clone_hits")),
      clone_misses_(&registry_.counter("serve.model_clone_misses")),
      queue_depth_(&registry_.gauge("serve.queue_depth")),
      request_ms_(&registry_.histogram("serve.request_ms")),
      load_ms_(&registry_.histogram("serve.load_ms")),
      stats_ms_(&registry_.histogram("serve.stats_ms")),
      forward_ms_(&registry_.histogram("serve.forward_ms")) {
  config_.threads = std::max(1, config_.threads);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.cache_capacity = std::max<std::size_t>(1, config_.cache_capacity);
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ScoringEngine::~ScoringEngine() { shutdown(); }

ScoreResult ScoringEngine::score(const std::string& bundle_path,
                                 const designs::Design& target,
                                 ScoreOptions opts) {
  requests_->add();
  util::Timer request_timer;
  try {
    util::Timer load_timer;
    const auto bundle = cache_.get(bundle_path);
    load_ms_->observe(load_timer.millis());
    const BundleManifest& m = bundle->manifest;

    const netlist::Netlist& nl = target.netlist;
    nl.validate();

    // Lint preflight: a user-supplied netlist with structural errors
    // (combinational loops, undriven pins, duplicate names) is rejected
    // with the full report instead of being scored garbage-in/garbage-out.
    {
      lint::LintReport preflight = lint::lint_netlist(nl);
      preflight.target_name = target.name;
      registry_.counter("lint.findings_total")
          .add(preflight.diagnostics.size());
      registry_.counter("lint.errors_total").add(preflight.errors());
      if (preflight.errors() > 0)
        throw lint::LintError(std::move(preflight));
    }

    ScoreResult r;
    r.target_name = target.name;
    r.bundle_design = m.design_name;
    r.netlist_matched = netlist_content_hash(nl) == m.netlist_hash;
    if (!r.netlist_matched && opts.strict_hash)
      throw BundleError(BundleErrorCode::kNetlistHashMismatch,
                        "'" + target.name + "' is not the netlist '" +
                            m.design_name + "' was trained on");

    util::Timer stats_timer;
    const auto stats = sim::estimate_by_simulation(
        nl, bundle->stimulus, m.probability_seed, m.probability_cycles);
    const ml::Matrix raw = graphir::extract_features(nl, stats);
    if (raw.cols() != m.feature_width)
      throw BundleError(BundleErrorCode::kFeatureWidthMismatch,
                        "extracted " + std::to_string(raw.cols()) +
                            " features, bundle expects " +
                            std::to_string(m.feature_width));
    const ml::Matrix x = bundle->standardizer.transform(raw);
    const graphir::CircuitGraph graph = graphir::build_graph(nl);
    r.stats_seconds = stats_timer.seconds();
    stats_ms_->observe(r.stats_seconds * 1e3);

    util::Timer forward_timer;
    // This thread's private clones of the bundle's models: no other thread
    // can touch them, so the forward pass is race-free by construction.
    ThreadClones::Entry& models =
        t_clones.get(bundle, *clone_hits_, *clone_misses_);
    models.classifier->set_adjacency(&graph.normalized_adjacency);
    const ml::Matrix out = models.classifier->forward(x, /*training=*/false);
    r.proba = ml::class1_probability(out);
    r.predicted = ml::predict_labels(out);
    if (models.regressor) {
      r.has_regressor = true;
      models.regressor->set_adjacency(&graph.normalized_adjacency);
      const ml::Matrix pred = models.regressor->forward(x, /*training=*/false);
      r.score.resize(static_cast<std::size_t>(pred.rows()));
      for (int i = 0; i < pred.rows(); ++i)
        r.score[static_cast<std::size_t>(i)] =
            static_cast<double>(pred(i, 0));
    } else {
      r.score = r.proba;
    }
    r.forward_seconds = forward_timer.seconds();
    forward_ms_->observe(r.forward_seconds * 1e3);

    r.sites = fault::fault_sites(nl);
    r.node_names.reserve(nl.num_nodes());
    for (netlist::NodeId id = 0; id < nl.num_nodes(); ++id)
      r.node_names.push_back(nl.node(id).name);

    completed_->add();
    request_ms_->observe(request_timer.millis());
    return r;
  } catch (...) {
    errors_->add();
    throw;
  }
}

ScoreResult ScoringEngine::score_path(const std::string& bundle_path,
                                      const std::string& target_path,
                                      ScoreOptions opts) {
  return score(bundle_path, load_score_target(target_path), opts);
}

std::future<ScoreResult> ScoringEngine::submit(std::string bundle_path,
                                               std::string target_path,
                                               ScoreOptions opts) {
  Job job{std::move(bundle_path), std::move(target_path), opts, {}};
  std::future<ScoreResult> future = job.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < config_.queue_capacity;
    });
    if (stopping_)
      throw std::runtime_error("ScoringEngine: submit after shutdown");
    queue_.push_back(std::move(job));
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  queue_not_empty_.notify_one();
  return future;
}

void ScoringEngine::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_not_empty_.wait(lock,
                            [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    queue_not_full_.notify_one();
    try {
      job.promise.set_value(
          score_path(job.bundle_path, job.target_path, job.opts));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
  }
}

void ScoringEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

MetricsSnapshot ScoringEngine::metrics() const {
  MetricsSnapshot s;
  s.requests = requests_->value();
  s.completed = completed_->value();
  s.errors = errors_->value();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, queue_depth_->value()));
  s.queue_high_water = static_cast<std::size_t>(
      std::max<std::int64_t>(0, queue_depth_->high_water()));
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  s.load_seconds = load_ms_->snapshot().sum * 1e-3;
  s.stats_seconds = stats_ms_->snapshot().sum * 1e-3;
  s.forward_seconds = forward_ms_->snapshot().sum * 1e-3;
  s.request_ms = request_ms_->snapshot();
  return s;
}

std::string ScoringEngine::metrics_json() const {
  const MetricsSnapshot s = metrics();
  std::string out = "{";
  out += "\"uptime_seconds\":" + obs::json_number(s.uptime_seconds);
  out += ",\"threads\":" + std::to_string(config_.threads);
  out += ",\"queue_capacity\":" + std::to_string(config_.queue_capacity);
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"queue_high_water\":" + std::to_string(s.queue_high_water);
  out += ",\"requests\":" + std::to_string(s.requests);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  out += ",\"model_clone_hits\":" + std::to_string(clone_hits_->value());
  out += ",\"model_clone_misses\":" + std::to_string(clone_misses_->value());
  out += ",\"cache_hit_ratio\":" + obs::json_number(s.cache_hit_ratio());
  out += ",\"request_ms\":" + obs::histogram_json(s.request_ms);
  out += ",\"load_ms\":" + obs::histogram_json(load_ms_->snapshot());
  out += ",\"stats_ms\":" + obs::histogram_json(stats_ms_->snapshot());
  out += ",\"forward_ms\":" + obs::histogram_json(forward_ms_->snapshot());
  out += "}";
  return out;
}

}  // namespace fcrit::serve
