#include "src/serve/engine.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/fault/fault.hpp"
#include "src/graphir/graph.hpp"
#include "src/lint/lint.hpp"
#include "src/ml/serialize.hpp"
#include "src/obs/json.hpp"
#include "src/netlist/bench_format.hpp"
#include "src/netlist/verilog_parser.hpp"
#include "src/sim/probability.hpp"
#include "src/util/text.hpp"
#include "src/util/timer.hpp"

namespace fcrit::serve {

namespace {

std::string read_file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw BundleError(BundleErrorCode::kIo, "cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return std::move(buffer).str();
}

// Per-thread cache of model clones, keyed by bundle identity. The pin
// keeps the bundle alive while its clones are cached, which also
// guarantees the key pointer is never recycled for a different bundle.
// Capacity is tiny (a worker rarely alternates between more than a few
// bundles); eviction is LRU by position.
struct ThreadClones {
  struct Entry {
    std::shared_ptr<const ModelBundle> pin;
    std::unique_ptr<ml::GcnModel> classifier;
    std::unique_ptr<ml::GcnModel> regressor;  // null when the bundle has none
  };
  static constexpr std::size_t kCapacity = 4;
  std::vector<Entry> entries;  // front = most recently used

  Entry& get(const std::shared_ptr<const ModelBundle>& bundle,
             obs::Counter& hits, obs::Counter& misses) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].pin.get() == bundle.get()) {
        if (i != 0) std::rotate(entries.begin(), entries.begin() + i,
                                entries.begin() + i + 1);
        hits.add();
        return entries.front();
      }
    }
    misses.add();
    Entry e;
    e.pin = bundle;
    e.classifier =
        std::make_unique<ml::GcnModel>(ml::clone_gcn(*bundle->classifier));
    if (bundle->regressor)
      e.regressor =
          std::make_unique<ml::GcnModel>(ml::clone_gcn(*bundle->regressor));
    entries.insert(entries.begin(), std::move(e));
    if (entries.size() > kCapacity) entries.pop_back();
    return entries.front();
  }
};

thread_local ThreadClones t_clones;

/// The batch-size ladder: small-step buckets where coalescing actually
/// operates (the default latency ladder starts at 1 µs — useless for
/// counting requests per forward).
std::vector<double> batch_size_buckets() {
  return {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
}

}  // namespace

std::string_view to_string(EngineErrorCode code) {
  switch (code) {
    case EngineErrorCode::kShutdown: return "shutdown";
    case EngineErrorCode::kQueueTimeout: return "queue-timeout";
    case EngineErrorCode::kAborted: return "aborted";
  }
  return "unknown";
}

EngineError::EngineError(EngineErrorCode code, const std::string& message)
    : std::runtime_error(message), code_(code) {}

std::shared_ptr<const ModelBundle> BundleCache::get(const std::string& path,
                                                    bool* cache_hit) {
  if (cache_hit) *cache_hit = false;
  const std::string bytes = read_file_bytes(path);
  const std::uint64_t key = fnv1a64(bytes);
  {
    util::MutexLock lock(mutex_);
    const auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      hits_->add();
      if (cache_hit) *cache_hit = true;
      return lru_.front().second;
    }
  }
  misses_->add();
  // Parse outside the lock: concurrent first-touch requests may duplicate
  // the work, but never block each other behind a cold load.
  std::istringstream is(bytes);
  auto bundle = std::make_shared<const ModelBundle>(load_bundle(is));
  util::MutexLock lock(mutex_);
  if (const auto it = index_.find(key); it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return lru_.front().second;  // another thread won the race
  }
  lru_.emplace_front(key, bundle);
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
  return bundle;
}

std::size_t BundleCache::size() const {
  util::MutexLock lock(mutex_);
  return lru_.size();
}

std::vector<netlist::NodeId> top_sites(const ScoreResult& result, int n) {
  std::vector<netlist::NodeId> ranked = result.sites;
  std::sort(ranked.begin(), ranked.end(),
            [&](netlist::NodeId a, netlist::NodeId b) {
              if (result.score[a] != result.score[b])
                return result.score[a] > result.score[b];
              return a < b;  // deterministic tie-break
            });
  if (n > 0 && ranked.size() > static_cast<std::size_t>(n))
    ranked.resize(static_cast<std::size_t>(n));
  return ranked;
}

designs::Design load_score_target(const std::string& arg) {
  const bool is_file =
      util::ends_with(arg, ".v") || util::ends_with(arg, ".bench");
  if (!is_file) return designs::build_design(arg);
  std::ifstream in(arg);
  if (!in) throw std::runtime_error("cannot open " + arg);
  designs::Design d;
  d.name = arg;
  d.netlist = util::ends_with(arg, ".bench") ? netlist::parse_bench(in)
                                             : netlist::parse_verilog(in);
  return d;
}

ScoringEngine::ScoringEngine(EngineConfig config)
    : config_(std::move(config)),
      cache_(std::max<std::size_t>(1, config_.cache_capacity),
             &registry_.counter("serve.cache_hits"),
             &registry_.counter("serve.cache_misses")),
      started_(std::chrono::steady_clock::now()),
      requests_(&registry_.counter("serve.requests")),
      completed_(&registry_.counter("serve.completed")),
      errors_(&registry_.counter("serve.errors")),
      clone_hits_(&registry_.counter("serve.model_clone_hits")),
      clone_misses_(&registry_.counter("serve.model_clone_misses")),
      batches_(&registry_.counter("serve.batches")),
      batched_requests_(&registry_.counter("serve.batched_requests")),
      collapsed_requests_(&registry_.counter("serve.collapsed_requests")),
      submit_timeouts_(&registry_.counter("serve.submit_timeouts")),
      aborted_jobs_(&registry_.counter("serve.aborted_jobs")),
      queue_depth_(&registry_.gauge("serve.queue_depth")),
      request_ms_(&registry_.histogram("serve.request_ms")),
      load_ms_(&registry_.histogram("serve.load_ms")),
      stats_ms_(&registry_.histogram("serve.stats_ms")),
      forward_ms_(&registry_.histogram("serve.forward_ms")),
      batch_size_(&registry_.histogram("serve.batch_size",
                                       batch_size_buckets())) {
  config_.threads = std::max(1, config_.threads);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  config_.cache_capacity = std::max<std::size_t>(1, config_.cache_capacity);
  config_.batch_max = std::max<std::size_t>(1, config_.batch_max);
  workers_.reserve(static_cast<std::size_t>(config_.threads));
  for (int i = 0; i < config_.threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ScoringEngine::~ScoringEngine() { shutdown(); }

ScoringEngine::PreparedTarget ScoringEngine::prepare_target(
    const ModelBundle& bundle, const designs::Design& target,
    const ScoreOptions& opts) {
  const BundleManifest& m = bundle.manifest;
  const netlist::Netlist& nl = target.netlist;
  nl.validate();

  // Lint preflight: a user-supplied netlist with structural errors
  // (combinational loops, undriven pins, duplicate names) is rejected
  // with the full report instead of being scored garbage-in/garbage-out.
  {
    lint::LintReport preflight = lint::lint_netlist(nl);
    preflight.target_name = target.name;
    registry_.counter("lint.findings_total")
        .add(preflight.diagnostics.size());
    registry_.counter("lint.errors_total").add(preflight.errors());
    if (preflight.errors() > 0)
      throw lint::LintError(std::move(preflight));
  }

  PreparedTarget prep;
  ScoreResult& r = prep.result;
  r.target_name = target.name;
  r.bundle_design = m.design_name;
  r.netlist_matched = netlist_content_hash(nl) == m.netlist_hash;
  if (!r.netlist_matched && opts.strict_hash)
    throw BundleError(BundleErrorCode::kNetlistHashMismatch,
                      "'" + target.name + "' is not the netlist '" +
                          m.design_name + "' was trained on");

  util::Timer stats_timer;
  const auto stats = sim::estimate_by_simulation(
      nl, bundle.stimulus, m.probability_seed, m.probability_cycles);
  const ml::Matrix raw = graphir::extract_features(nl, stats);
  if (raw.cols() != m.feature_width)
    throw BundleError(BundleErrorCode::kFeatureWidthMismatch,
                      "extracted " + std::to_string(raw.cols()) +
                          " features, bundle expects " +
                          std::to_string(m.feature_width));
  prep.features = bundle.standardizer.transform(raw);
  prep.graph = graphir::build_graph(nl);
  r.stats_seconds = stats_timer.seconds();
  stats_ms_->observe(r.stats_seconds * 1e3);

  r.sites = fault::fault_sites(nl);
  r.node_names.reserve(nl.num_nodes());
  for (netlist::NodeId id = 0; id < nl.num_nodes(); ++id)
    r.node_names.push_back(nl.node(id).name);
  return prep;
}

ScoreResult ScoringEngine::score(const std::string& bundle_path,
                                 const designs::Design& target,
                                 ScoreOptions opts) {
  requests_->add();
  // One pointer null-check per call when untraced (trace_id stays 0 unless
  // a collector was enabled at begin()); span recording otherwise.
  obs::RequestTraceCollector* tc =
      opts.trace_id != 0 ? config_.traces : nullptr;
  util::Timer request_timer;
  try {
    bool cache_hit = false;
    const auto t_load = obs::TraceClock::now();
    util::Timer load_timer;
    const auto bundle = cache_.get(bundle_path, &cache_hit);
    load_ms_->observe(load_timer.millis());
    if (tc)
      tc->span(opts.trace_id, "bundle_load", t_load, obs::TraceClock::now(),
               cache_hit ? "cache-hit" : "parse");

    const auto t_prep = obs::TraceClock::now();
    PreparedTarget prep = prepare_target(*bundle, target, opts);
    if (tc)
      tc->span(opts.trace_id, "golden_sim", t_prep, obs::TraceClock::now());
    ScoreResult& r = prep.result;
    r.trace_id = opts.trace_id;

    const auto t_fwd = obs::TraceClock::now();
    util::Timer forward_timer;
    // This thread's private clones of the bundle's models: no other thread
    // can touch them, so the forward pass is race-free by construction.
    ThreadClones::Entry& models =
        t_clones.get(bundle, *clone_hits_, *clone_misses_);
    models.classifier->set_adjacency(&prep.graph.normalized_adjacency);
    const ml::Matrix out =
        models.classifier->forward(prep.features, /*training=*/false);
    r.proba = ml::class1_probability(out);
    r.predicted = ml::predict_labels(out);
    if (models.regressor) {
      r.has_regressor = true;
      models.regressor->set_adjacency(&prep.graph.normalized_adjacency);
      const ml::Matrix pred =
          models.regressor->forward(prep.features, /*training=*/false);
      r.score.resize(static_cast<std::size_t>(pred.rows()));
      for (int i = 0; i < pred.rows(); ++i)
        r.score[static_cast<std::size_t>(i)] =
            static_cast<double>(pred(i, 0));
    } else {
      r.score = r.proba;
    }
    r.forward_seconds = forward_timer.seconds();
    forward_ms_->observe(r.forward_seconds * 1e3);
    if (tc)
      tc->span(opts.trace_id, "forward", t_fwd, obs::TraceClock::now());

    completed_->add();
    request_ms_->observe(request_timer.millis());
    return r;
  } catch (...) {
    errors_->add();
    throw;
  }
}

std::vector<BatchOutcome> ScoringEngine::score_batch(
    const std::string& bundle_path,
    const std::vector<designs::Design>& targets, ScoreOptions opts,
    const std::vector<std::vector<std::uint64_t>>* trace_ids) {
  std::vector<BatchOutcome> outcomes(targets.size());
  if (targets.empty()) return outcomes;
  requests_->add(targets.size());
  util::Timer request_timer;

  // Shared-stage spans fan out to every trace id riding on the batch: a
  // coalesced request's trace shows the one bundle_load/forward it shared.
  obs::RequestTraceCollector* tc = trace_ids ? config_.traces : nullptr;
  const auto span_for = [&](const std::vector<std::size_t>& indices,
                            const char* name, obs::TraceClock::time_point a,
                            obs::TraceClock::time_point b,
                            const std::string& detail) {
    if (!tc) return;
    for (const std::size_t i : indices)
      for (const std::uint64_t id : (*trace_ids)[i])
        tc->span(id, name, a, b, detail);
  };
  std::vector<std::size_t> all_indices(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) all_indices[i] = i;

  std::shared_ptr<const ModelBundle> bundle;
  try {
    bool cache_hit = false;
    const auto t_load = obs::TraceClock::now();
    util::Timer load_timer;
    bundle = cache_.get(bundle_path, &cache_hit);
    load_ms_->observe(load_timer.millis());
    span_for(all_indices, "bundle_load", t_load, obs::TraceClock::now(),
             cache_hit ? "cache-hit" : "parse");
  } catch (...) {
    errors_->add(targets.size());
    for (auto& o : outcomes) o.error = std::current_exception();
    return outcomes;
  }

  // Per-target preflight + feature extraction; failures stay positional.
  std::vector<std::optional<PreparedTarget>> prepared(targets.size());
  std::vector<std::size_t> live;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    try {
      const auto t_prep = obs::TraceClock::now();
      prepared[i] = prepare_target(*bundle, targets[i], opts);
      span_for({i}, "golden_sim", t_prep, obs::TraceClock::now(), "");
      live.push_back(i);
    } catch (...) {
      errors_->add();
      outcomes[i].error = std::current_exception();
    }
  }
  if (live.empty()) return outcomes;

  // Stack the survivors: block-diagonal adjacency + row-concatenated
  // features. Each target owns a contiguous row range, and because
  // from_coo keeps per-row entries in column order, every row's
  // accumulation order in the batched SpMM equals its solo order —
  // batched results are bitwise-identical to unbatched ones.
  int total_rows = 0;
  std::size_t total_nnz = 0;
  for (const std::size_t i : live) {
    total_rows += prepared[i]->features.rows();
    total_nnz += prepared[i]->graph.normalized_adjacency.nnz();
  }
  const int width = prepared[live.front()]->features.cols();
  ml::Matrix x(total_rows, width);
  std::vector<ml::Coo> entries;
  entries.reserve(total_nnz);
  int base = 0;
  for (const std::size_t i : live) {
    const ml::Matrix& f = prepared[i]->features;
    for (int r = 0; r < f.rows(); ++r)
      std::copy(f.row(r).begin(), f.row(r).end(), x.row(base + r).begin());
    const ml::SparseMatrix& adj = prepared[i]->graph.normalized_adjacency;
    const auto& row_ptr = adj.row_ptr();
    const auto& col = adj.col_index();
    const auto& val = adj.values();
    for (int r = 0; r < adj.rows(); ++r)
      for (int k = row_ptr[static_cast<std::size_t>(r)];
           k < row_ptr[static_cast<std::size_t>(r) + 1]; ++k)
        entries.push_back({base + r, base + col[static_cast<std::size_t>(k)],
                           val[static_cast<std::size_t>(k)]});
    base += f.rows();
  }
  const ml::SparseMatrix block =
      ml::SparseMatrix::from_coo(total_rows, total_rows, std::move(entries));

  const auto t_fwd = obs::TraceClock::now();
  util::Timer forward_timer;
  ThreadClones::Entry& models =
      t_clones.get(bundle, *clone_hits_, *clone_misses_);
  models.classifier->set_adjacency(&block);
  const ml::Matrix out = models.classifier->forward(x, /*training=*/false);
  const std::vector<double> proba_all = ml::class1_probability(out);
  const std::vector<int> predicted_all = ml::predict_labels(out);
  ml::Matrix reg_out;
  if (models.regressor) {
    models.regressor->set_adjacency(&block);
    reg_out = models.regressor->forward(x, /*training=*/false);
  }
  const double forward_seconds = forward_timer.seconds();
  forward_ms_->observe(forward_seconds * 1e3);
  span_for(live, "forward", t_fwd, obs::TraceClock::now(),
           "rows=" + std::to_string(total_rows) +
               " targets=" + std::to_string(live.size()));
  batches_->add();
  batched_requests_->add(live.size());
  batch_size_->observe(static_cast<double>(live.size()));

  // Split the stacked outputs back into per-target results.
  base = 0;
  for (const std::size_t i : live) {
    ScoreResult r = std::move(prepared[i]->result);
    if (trace_ids && !(*trace_ids)[i].empty())
      r.trace_id = (*trace_ids)[i].front();
    const int rows = prepared[i]->features.rows();
    r.proba.assign(proba_all.begin() + base, proba_all.begin() + base + rows);
    r.predicted.assign(predicted_all.begin() + base,
                       predicted_all.begin() + base + rows);
    if (models.regressor) {
      r.has_regressor = true;
      r.score.resize(static_cast<std::size_t>(rows));
      for (int k = 0; k < rows; ++k)
        r.score[static_cast<std::size_t>(k)] =
            static_cast<double>(reg_out(base + k, 0));
    } else {
      r.score = r.proba;
    }
    r.forward_seconds = forward_seconds;
    base += rows;
    completed_->add();
    request_ms_->observe(request_timer.millis());
    outcomes[i].result = std::move(r);
  }
  return outcomes;
}

ScoreResult ScoringEngine::score_path(const std::string& bundle_path,
                                      const std::string& target_path,
                                      ScoreOptions opts) {
  return score(bundle_path, load_score_target(target_path), opts);
}

std::future<ScoreResult> ScoringEngine::submit(
    std::string bundle_path, std::string target_path, ScoreOptions opts,
    std::optional<std::chrono::milliseconds> queue_timeout) {
  Job job{std::move(bundle_path), std::move(target_path), opts, {}, {}};
  if (opts.trace_id != 0) job.enqueued = obs::TraceClock::now();
  std::future<ScoreResult> future = job.promise.get_future();
  {
    util::MutexLock lock(queue_mutex_);
    // Explicit predicate loops (not wait lambdas): the thread-safety
    // analysis can only see guarded reads made directly in this scope.
    if (queue_timeout) {
      const auto deadline = std::chrono::steady_clock::now() + *queue_timeout;
      while (!stopping_ && queue_.size() >= config_.queue_capacity) {
        if (queue_not_full_.wait_until(lock.native(), deadline) !=
            std::cv_status::timeout)
          continue;
        if (!stopping_ && queue_.size() >= config_.queue_capacity) {
          submit_timeouts_->add();
          throw EngineError(
              EngineErrorCode::kQueueTimeout,
              "queue full (depth " + std::to_string(queue_.size()) +
                  ") for " + std::to_string(queue_timeout->count()) + " ms");
        }
        break;
      }
    } else {
      while (!stopping_ && queue_.size() >= config_.queue_capacity)
        queue_not_full_.wait(lock.native());
    }
    if (stopping_)
      throw EngineError(EngineErrorCode::kShutdown,
                        "ScoringEngine: submit after shutdown");
    queue_.push_back(std::move(job));
    queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
  }
  queue_not_empty_.notify_one();
  return future;
}

void ScoringEngine::worker_loop() {
  for (;;) {
    // The dequeued job plus — when coalescing is on — every other queued
    // job against the same bundle with the same options, scored as one
    // batch below.
    std::vector<Job> batch;
    {
      util::MutexLock lock(queue_mutex_);
      while (!stopping_ && queue_.empty()) queue_not_empty_.wait(lock.native());
      if (queue_.empty()) return;  // stopping_ and fully drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (config_.batch_max > 1) {
        for (auto it = queue_.begin();
             it != queue_.end() && batch.size() < config_.batch_max;) {
          if (it->bundle_path == batch.front().bundle_path &&
              it->opts.strict_hash == batch.front().opts.strict_hash) {
            batch.push_back(std::move(*it));
            it = queue_.erase(it);
          } else {
            ++it;
          }
        }
      }
      queue_depth_->set(static_cast<std::int64_t>(queue_.size()));
    }
    if (batch.size() > 1)
      queue_not_full_.notify_all();
    else
      queue_not_full_.notify_one();
    if (config_.before_score_hook)
      config_.before_score_hook(batch.front().target_path);
    run_job_batch(std::move(batch));
  }
}

void ScoringEngine::run_job_batch(std::vector<Job> batch) {
  // Traced jobs get their queue_wait span the moment a worker claims the
  // batch; untraced ones (trace_id 0) cost a single integer compare here.
  obs::RequestTraceCollector* tc = config_.traces;
  const auto dequeued = obs::TraceClock::now();
  bool any_traced = false;
  for (const Job& job : batch) {
    if (job.opts.trace_id == 0) continue;
    any_traced = true;
    if (tc) tc->span(job.opts.trace_id, "queue_wait", job.enqueued, dequeued);
  }

  if (batch.size() == 1) {
    Job& job = batch.front();
    try {
      designs::Design target = load_score_target(job.target_path);
      if (tc && job.opts.trace_id != 0)
        tc->span(job.opts.trace_id, "batch_assembly", dequeued,
                 obs::TraceClock::now(), "jobs=1 unique=1");
      job.promise.set_value(score(job.bundle_path, target, job.opts));
    } catch (...) {
      job.promise.set_exception(std::current_exception());
    }
    return;
  }

  // Collapse duplicates first: concurrent clients racing on the same
  // target (the coalescing key already fixed the bundle and options)
  // share ONE scored target, and its result fans out to every promise.
  // This is where batching pays even on a saturated machine — k identical
  // requests cost one parse + one stats sim + one forward.
  std::vector<std::string> unique_paths;           // first-seen order
  std::vector<std::vector<std::size_t>> fanout;    // batch indices per path
  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::size_t u = 0;
    while (u < unique_paths.size() && unique_paths[u] != batch[i].target_path)
      ++u;
    if (u == unique_paths.size()) {
      unique_paths.push_back(batch[i].target_path);
      fanout.emplace_back();
    }
    fanout[u].push_back(i);
  }

  // Resolve each target so one bad path only fails its own promises.
  std::vector<designs::Design> targets;
  std::vector<std::size_t> loaded;  // unique-path indices that resolved
  targets.reserve(unique_paths.size());
  for (std::size_t u = 0; u < unique_paths.size(); ++u) {
    try {
      targets.push_back(load_score_target(unique_paths[u]));
      loaded.push_back(u);
    } catch (...) {
      const std::exception_ptr error = std::current_exception();
      for (const std::size_t i : fanout[u]) {
        requests_->add();  // count the failed attempt like score() would
        errors_->add();
        batch[i].promise.set_exception(error);
      }
    }
  }
  if (loaded.empty()) return;

  // Every coalesced request's trace records the whole group as peers and
  // a batch_assembly span covering dedupe + target resolution; the ids
  // ride into score_batch so shared-stage spans land on each of them.
  std::vector<std::vector<std::uint64_t>> batch_trace_ids(loaded.size());
  if (any_traced && tc) {
    std::vector<std::uint64_t> all_ids;
    for (const Job& job : batch)
      if (job.opts.trace_id != 0) all_ids.push_back(job.opts.trace_id);
    const auto assembled = obs::TraceClock::now();
    const std::string detail = "jobs=" + std::to_string(batch.size()) +
                               " unique=" + std::to_string(loaded.size());
    for (const Job& job : batch) {
      if (job.opts.trace_id == 0) continue;
      tc->span(job.opts.trace_id, "batch_assembly", dequeued, assembled,
               detail);
      tc->add_peers(job.opts.trace_id, all_ids);
    }
    for (std::size_t k = 0; k < loaded.size(); ++k)
      for (const std::size_t i : fanout[loaded[k]])
        if (batch[i].opts.trace_id != 0)
          batch_trace_ids[k].push_back(batch[i].opts.trace_id);
  }

  std::vector<BatchOutcome> outcomes =
      score_batch(batch.front().bundle_path, targets, batch.front().opts,
                  any_traced && tc ? &batch_trace_ids : nullptr);
  for (std::size_t k = 0; k < loaded.size(); ++k) {
    const std::vector<std::size_t>& group = fanout[loaded[k]];
    // score_batch counted this target once; the collapsed duplicates are
    // real client requests and still count as such.
    if (group.size() > 1) {
      const std::uint64_t dupes = group.size() - 1;
      collapsed_requests_->add(dupes);
      batched_requests_->add(dupes);  // served through the batch, uncounted
                                      // by score_batch (it saw one target)
      requests_->add(dupes);
      if (outcomes[k].result)
        completed_->add(dupes);
      else
        errors_->add(dupes);
    }
    for (std::size_t j = 0; j < group.size(); ++j) {
      Job& job = batch[group[j]];
      if (!outcomes[k].result) {
        job.promise.set_exception(outcomes[k].error);
      } else if (j + 1 == group.size()) {
        outcomes[k].result->trace_id = job.opts.trace_id;
        job.promise.set_value(std::move(*outcomes[k].result));
      } else {
        ScoreResult copy = *outcomes[k].result;
        copy.trace_id = job.opts.trace_id;  // each collapsed duplicate
        job.promise.set_value(std::move(copy));  // reports its own trace
      }
    }
  }
}

void ScoringEngine::shutdown() {
  {
    util::MutexLock lock(queue_mutex_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
  workers_.clear();
}

void ScoringEngine::abort() {
  std::deque<Job> discarded;
  {
    util::MutexLock lock(queue_mutex_);
    stopping_ = true;
    discarded.swap(queue_);
    queue_depth_->set(0);
  }
  queue_not_empty_.notify_all();
  queue_not_full_.notify_all();
  aborted_jobs_->add(discarded.size());
  for (auto& job : discarded)
    job.promise.set_exception(std::make_exception_ptr(EngineError(
        EngineErrorCode::kAborted,
        "shard aborted with '" + job.target_path + "' still queued")));
}

void ScoringEngine::prewarm(const std::string& bundle_path) {
  (void)cache_.get(bundle_path);
}

std::size_t ScoringEngine::queue_depth() const {
  util::MutexLock lock(queue_mutex_);
  return queue_.size();
}

MetricsSnapshot ScoringEngine::metrics() const {
  MetricsSnapshot s;
  s.requests = requests_->value();
  s.completed = completed_->value();
  s.errors = errors_->value();
  s.cache_hits = cache_.hits();
  s.cache_misses = cache_.misses();
  s.batches = batches_->value();
  s.batched_requests = batched_requests_->value();
  s.collapsed_requests = collapsed_requests_->value();
  s.submit_timeouts = submit_timeouts_->value();
  s.queue_depth = static_cast<std::size_t>(
      std::max<std::int64_t>(0, queue_depth_->value()));
  s.queue_high_water = static_cast<std::size_t>(
      std::max<std::int64_t>(0, queue_depth_->high_water()));
  s.uptime_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  s.load_seconds = load_ms_->snapshot().sum * 1e-3;
  s.stats_seconds = stats_ms_->snapshot().sum * 1e-3;
  s.forward_seconds = forward_ms_->snapshot().sum * 1e-3;
  s.request_ms = request_ms_->snapshot();
  return s;
}

std::string ScoringEngine::metrics_json() const {
  const MetricsSnapshot s = metrics();
  std::string out = "{";
  out += "\"uptime_seconds\":" + obs::json_number(s.uptime_seconds);
  out += ",\"threads\":" + std::to_string(config_.threads);
  out += ",\"queue_capacity\":" + std::to_string(config_.queue_capacity);
  out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
  out += ",\"queue_high_water\":" + std::to_string(s.queue_high_water);
  out += ",\"requests\":" + std::to_string(s.requests);
  out += ",\"completed\":" + std::to_string(s.completed);
  out += ",\"errors\":" + std::to_string(s.errors);
  out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
  out += ",\"cache_misses\":" + std::to_string(s.cache_misses);
  out += ",\"model_clone_hits\":" + std::to_string(clone_hits_->value());
  out += ",\"model_clone_misses\":" + std::to_string(clone_misses_->value());
  out += ",\"batch_max\":" + std::to_string(config_.batch_max);
  out += ",\"batches\":" + std::to_string(s.batches);
  out += ",\"batched_requests\":" + std::to_string(s.batched_requests);
  out += ",\"collapsed_requests\":" + std::to_string(s.collapsed_requests);
  out += ",\"submit_timeouts\":" + std::to_string(s.submit_timeouts);
  out += ",\"aborted_jobs\":" + std::to_string(aborted_jobs_->value());
  out += ",\"cache_hit_ratio\":" + obs::json_number(s.cache_hit_ratio());
  out += ",\"request_ms\":" + obs::histogram_json(s.request_ms);
  out += ",\"load_ms\":" + obs::histogram_json(load_ms_->snapshot());
  out += ",\"stats_ms\":" + obs::histogram_json(stats_ms_->snapshot());
  out += ",\"forward_ms\":" + obs::histogram_json(forward_ms_->snapshot());
  out += ",\"batch_size\":" + obs::histogram_json(batch_size_->snapshot());
  out += "}";
  return out;
}

}  // namespace fcrit::serve
