// Reusable line-protocol TCP front end: bind/listen/accept plumbing,
// thread-per-connection framing and graceful drain, with the actual
// protocol supplied by a subclass's handle_line().
//
// Both daemons in the tree sit on this base: serve::Server (one engine,
// PR 4) and fleet::FleetServer (router over N shards, PR 6). The framing
// contract they share: one request per '\n'-terminated line (a trailing
// '\r' is stripped), blank lines are ignored, every response already
// carries its own ".\n" terminator, and a handle_line() returning
// after "QUIT" closes that connection (should_close()).
//
// stop() is a graceful shutdown: the listening socket closes first, then
// every connection's read side is shut down — requests already in flight
// still compute and write their responses before the threads are joined.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "src/obs/prom.hpp"
#include "src/util/thread_annotations.hpp"

namespace fcrit::obs {
class RequestTraceCollector;
class TelemetryExporter;
}  // namespace fcrit::obs

namespace fcrit::serve {

/// "ERR <message>" plus the protocol terminator.
std::string error_response(const std::string& message);

class LineServer {
 public:
  /// `port` on 127.0.0.1; 0 picks an ephemeral port (see port()).
  explicit LineServer(std::uint16_t port) : requested_port_(port) {}
  virtual ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Bind, listen and start the acceptor thread; throws std::runtime_error
  /// on socket failure.
  void start();

  /// The actually-bound port (resolves port 0).
  int port() const { return port_; }

  bool running() const { return running_.load(); }

  /// Graceful shutdown: stop accepting, drain in-flight requests, join.
  /// Idempotent; the destructor calls it.
  void stop();

  /// Process one protocol line (without the newline) into a full response
  /// (terminator included). Public so tests can drive the protocol
  /// without sockets.
  virtual std::string handle_line(const std::string& line) = 0;

  /// Wire the observability surfaces the shared verbs read. Neither is
  /// owned; pass nullptr to detach. The collector backs the TRACE verb
  /// and the trace_ring field of METRICS, the exporter the exporter
  /// field. Call before start().
  void set_trace_collector(obs::RequestTraceCollector* traces) {
    traces_ = traces;
  }
  void set_exporter(obs::TelemetryExporter* exporter) { exporter_ = exporter; }
  obs::RequestTraceCollector* trace_collector() const { return traces_; }

 protected:
  /// True when the request line the connection just served should end it
  /// (the base closes after QUIT; subclasses may extend).
  virtual bool should_close(const std::string& verb) const {
    return verb == "QUIT";
  }

  /// The shared METRICS serializer both daemons answer through: splices a
  /// common "server" object (uptime, trace-ring occupancy, exporter lag)
  /// into the front of the subclass's JSON payload object, then frames it.
  /// `payload` must be a JSON object ("{...}").
  std::string metrics_response(const std::string& payload) const;

  /// METRICS PROM: the registries rendered in Prometheus text exposition
  /// format, framed. Subclasses supply their registry set (the fleet adds
  /// per-shard labels).
  std::string prom_response(const std::vector<obs::PromSource>& sources) const;

  /// TRACE <id> / TRACE LAST <n> against the attached collector.
  /// `args` are the tokens after the verb.
  std::string trace_response(const std::vector<std::string>& args) const;

 private:
  void accept_loop();
  void connection_loop(int fd);

  std::chrono::steady_clock::time_point started_ =
      std::chrono::steady_clock::now();
  obs::RequestTraceCollector* traces_ = nullptr;
  obs::TelemetryExporter* exporter_ = nullptr;
  std::uint16_t requested_port_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  util::Mutex conn_mutex_;
  std::vector<std::thread> conn_threads_ GUARDED_BY(conn_mutex_);
  std::unordered_set<int> conn_fds_ GUARDED_BY(conn_mutex_);
};

}  // namespace fcrit::serve
