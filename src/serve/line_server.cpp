#include "src/serve/line_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "src/obs/exporter.hpp"
#include "src/obs/json.hpp"
#include "src/obs/request_trace.hpp"
#include "src/util/text.hpp"

namespace fcrit::serve {

namespace {

void send_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::send(fd, text.data() + sent, text.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing sensible to do
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string error_response(const std::string& message) {
  return "ERR " + message + "\n.\n";
}

std::string LineServer::metrics_response(const std::string& payload) const {
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();
  std::string server = "{\"uptime_seconds\":" + obs::json_number(uptime);
  if (traces_) {
    server += ",\"trace_ring\":{\"enabled\":";
    server += traces_->enabled() ? "true" : "false";
    server += ",\"occupancy\":" + std::to_string(traces_->ring_size());
    server += ",\"capacity\":" + std::to_string(traces_->ring_capacity());
    server += ",\"active\":" + std::to_string(traces_->active_size());
    server += ",\"dropped\":" + std::to_string(traces_->dropped());
    server += "}";
  } else {
    server += ",\"trace_ring\":null";
  }
  if (exporter_) {
    const obs::TelemetryExporter::Status st = exporter_->status();
    server += ",\"exporter\":{\"running\":";
    server += st.running ? "true" : "false";
    server +=
        ",\"interval_seconds\":" + obs::json_number(st.interval_seconds);
    server += ",\"snapshots\":" + std::to_string(st.snapshots);
    server += ",\"last_lag_ms\":" + obs::json_number(st.last_lag_ms);
    server += "}";
  } else {
    server += ",\"exporter\":null";
  }
  server += "}";
  // Splice into the subclass payload so both daemons expose the common
  // fields at the same place without each re-assembling them.
  if (payload.size() < 2 || payload.front() != '{' || payload.back() != '}')
    return error_response("internal: METRICS payload is not a JSON object");
  std::string out = "{\"server\":" + server;
  if (payload != "{}") out += "," + payload.substr(1, payload.size() - 2);
  out += "}\n.\n";
  return out;
}

std::string LineServer::prom_response(
    const std::vector<obs::PromSource>& sources) const {
  return obs::to_prometheus(sources) + ".\n";
}

std::string LineServer::trace_response(
    const std::vector<std::string>& args) const {
  if (!traces_) return error_response("tracing not available");
  if (args.empty()) return error_response("usage: TRACE <id> | TRACE LAST <n>");
  if (args[0] == "LAST" || args[0] == "last") {
    std::size_t n = 10;
    if (args.size() > 1) {
      char* end = nullptr;
      const unsigned long long v = std::strtoull(args[1].c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v == 0)
        return error_response("TRACE LAST: bad count '" + args[1] + "'");
      n = static_cast<std::size_t>(v);
    }
    const std::vector<obs::RequestTrace> traces = traces_->last(n);
    std::string out = "{\"count\":" + std::to_string(traces.size());
    out += ",\"traces\":[";
    for (std::size_t i = 0; i < traces.size(); ++i) {
      if (i != 0) out += ",";
      out += obs::request_trace_json(traces[i]);
    }
    out += "]}\n.\n";
    return out;
  }
  char* end = nullptr;
  const unsigned long long id = std::strtoull(args[0].c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || id == 0)
    return error_response("TRACE: bad trace id '" + args[0] + "'");
  const auto trace = traces_->find(static_cast<std::uint64_t>(id));
  if (!trace) {
    return error_response(
        traces_->enabled()
            ? "trace " + args[0] + " not found (completed and evicted, "
                  "still in flight, or never traced)"
            : "tracing disabled");
  }
  return obs::request_trace_json(*trace) + "\n.\n";
}

LineServer::~LineServer() {
  // Subclass state is already gone by the time this runs, so a subclass
  // whose handle_line touches members MUST stop() in its own destructor;
  // this is only the backstop for the base-alone case.
  stop();
}

void LineServer::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(requested_port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind 127.0.0.1:" +
                             std::to_string(requested_port_) + ": " + reason);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) < 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen: " + reason);
  }
  running_.store(true);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void LineServer::accept_loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      break;  // listening socket gone
    }
    util::MutexLock lock(conn_mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void LineServer::connection_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const std::size_t newline = buffer.find('\n');
    if (newline == std::string::npos) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;  // peer closed, or stop() shut our read side down
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    std::string line = buffer.substr(0, newline);
    buffer.erase(0, newline + 1);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (util::trim(line).empty()) continue;
    const std::string verb = util::split_ws(line)[0];
    send_all(fd, handle_line(line));
    if (should_close(verb) || stopping_.load()) open = false;
  }
  {
    util::MutexLock lock(conn_mutex_);
    conn_fds_.erase(fd);
  }
  ::close(fd);
}

void LineServer::stop() {
  if (!running_.load() && listen_fd_ < 0) return;
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (acceptor_.joinable()) acceptor_.join();
  {
    // Wake connections parked in recv(); their writes still complete, so
    // in-flight requests are answered before the threads exit.
    util::MutexLock lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RD);
  }
  std::vector<std::thread> threads;
  {
    util::MutexLock lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads)
    if (t.joinable()) t.join();
  running_.store(false);
}

}  // namespace fcrit::serve
