// The serving-side inference engine: netlist in, criticality scores out,
// no fault campaign and no training anywhere on the path.
//
// score() maps a parsed netlist -> graph -> §3.1 features (golden
// simulation replayed with the bundle's recorded stimulus/seed/cycles) ->
// standardized matrix -> classifier probabilities + regressor scores.
// Bundles are loaded through a thread-safe LRU cache keyed by file
// content hash, so repeated requests against the same artifact skip the
// parse. A fixed worker pool with a bounded queue serves concurrent
// requests (submit() blocks while the queue is full — backpressure, not
// unbounded memory — or times out with EngineError(kQueueTimeout) when
// the caller passes a deadline, the admission path the fleet router's
// BUSY responses are built on). Every engine owns a private obs::Registry
// whose instruments (request/stage latency histograms with p50/p90/p99,
// cache hit/miss counters, a queue-depth gauge with high-water mark) back
// both metrics() and the metrics_json() snapshot the daemon's METRICS
// command returns; a per-engine registry keeps concurrent engines from
// mixing counts.
// Every forward pass runs on a per-WORKER clone of the bundle's models:
// GcnModel caches activations internally, so instances must not be shared
// across threads. Each thread keeps a small thread_local cache of clones
// keyed by bundle identity (pinned by shared_ptr so a cache entry can
// never alias a recycled address), making the steady-state forward path
// clone-free; serve.model_clone_hits/misses count its effectiveness.
//
// Cross-request batching (EngineConfig::batch_max > 1): a worker that
// dequeues a job also claims every other queued job for the same bundle
// (up to batch_max) and scores the group through score_batch() — the
// per-target graphs are stacked into one block-diagonal adjacency and a
// row-concatenated feature matrix, so a single model forward serves the
// whole batch. Per-target rows only ever see their own block, which keeps
// batched results bitwise-identical to scoring each target alone.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/designs/designs.hpp"
#include "src/graphir/graph.hpp"
#include "src/netlist/netlist.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/request_trace.hpp"
#include "src/serve/bundle.hpp"
#include "src/util/thread_annotations.hpp"

namespace fcrit::serve {

/// Typed failures of the engine's queueing layer (the scoring path itself
/// reports BundleError / lint::LintError / std::runtime_error).
enum class EngineErrorCode {
  kShutdown,      // submit() after shutdown()/abort()
  kQueueTimeout,  // the submit deadline expired while the queue stayed full
  kAborted,       // queued job discarded by abort() before a worker took it
};

std::string_view to_string(EngineErrorCode code);

class EngineError : public std::runtime_error {
 public:
  EngineError(EngineErrorCode code, const std::string& message);
  EngineErrorCode code() const { return code_; }

 private:
  EngineErrorCode code_;
};

struct EngineConfig {
  int threads = 4;
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 8;
  /// Cross-request coalescing: a worker that dequeues a job also claims up
  /// to batch_max - 1 more queued jobs for the SAME bundle (and strictness)
  /// and scores them as one batch — one bundle fetch, one clone lookup,
  /// one model forward. 1 disables coalescing.
  std::size_t batch_max = 1;
  /// Test-only instrumentation: when set, a worker invokes this right
  /// after dequeuing (the job already left the queue, coalescing already
  /// happened) and before scoring. Lets tests park a worker
  /// deterministically while they fill the queue behind it.
  std::function<void(const std::string& target_path)> before_score_hook;
  /// Request-trace sink (not owned; the fleet shares one across shards).
  /// Requests whose ScoreOptions carry a nonzero trace_id record
  /// queue_wait / batch_assembly / bundle_load / golden_sim / forward
  /// spans against it. Null or disabled: zero work on the scoring path.
  obs::RequestTraceCollector* traces = nullptr;
};

struct ScoreOptions {
  /// Refuse (BundleError kNetlistHashMismatch) to score a netlist whose
  /// content hash differs from the one the bundle was trained on. Off by
  /// default: cross-netlist scoring is the train-once/infer-cheap use
  /// case; the flag guards bit-identical reproduction claims.
  bool strict_hash = false;
  /// Request trace id from RequestTraceCollector::begin(); 0 = untraced.
  /// Does not affect scoring or batching eligibility, only observability.
  std::uint64_t trace_id = 0;
};

struct ScoreResult {
  std::string target_name;
  std::string bundle_design;
  bool netlist_matched = false;  // target hash == manifest hash
  bool has_regressor = false;

  /// Candidate fault sites (gates + flops), the rows worth ranking.
  std::vector<netlist::NodeId> sites;
  std::vector<std::string> node_names;  // per node id
  std::vector<double> proba;            // classifier P(Critical) per node id
  std::vector<int> predicted;           // classifier class per node id
  std::vector<double> score;            // regressor (proba when absent)

  double stats_seconds = 0.0;    // golden simulation + feature extraction
  double forward_seconds = 0.0;  // model clone + forward passes (for a
                                 // batched request: the shared batch pass)
  std::uint64_t trace_id = 0;    // echo of ScoreOptions::trace_id
};

/// The `sites` of a result ranked by descending score, truncated to n
/// (n <= 0 keeps all).
std::vector<netlist::NodeId> top_sites(const ScoreResult& result, int n);

/// Exactly one of `result` / `error` is set: score_batch() reports
/// per-target outcomes so one bad netlist cannot poison its batch mates.
struct BatchOutcome {
  std::optional<ScoreResult> result;
  std::exception_ptr error;
};

struct MetricsSnapshot {
  std::uint64_t requests = 0;   // score attempts started
  std::uint64_t completed = 0;  // finished without throwing
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t batches = 0;           // multi-request forward passes
  std::uint64_t batched_requests = 0;  // requests served through a batch
  std::uint64_t collapsed_requests = 0;  // duplicate batch jobs scored once
  std::uint64_t submit_timeouts = 0;   // submit deadlines that expired
  std::size_t queue_depth = 0;  // jobs waiting right now
  std::size_t queue_high_water = 0;
  double uptime_seconds = 0.0;  // since engine construction
  double load_seconds = 0.0;  // bundle fetch (cache hit or parse)
  double stats_seconds = 0.0;
  double forward_seconds = 0.0;
  /// End-to-end latency of successful score() calls; p50/p90/p99 via
  /// request_ms.percentile(). All duration fields come from one histogram
  /// snapshot, so the derived mean can never exceed the observed max (the
  /// torn load_nanos_/completed_ read the hand-rolled atomics had).
  obs::HistogramSnapshot request_ms;

  double cache_hit_ratio() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : double(cache_hits) / double(total);
  }
};

/// Thread-safe LRU of parsed bundles keyed by file content hash. Sharing
/// is by shared_ptr, so an entry evicted mid-request stays alive until
/// the request drops it. Hit/miss counts go to registry counters when the
/// owner provides them (the ScoringEngine does), else to private ones.
class BundleCache {
 public:
  explicit BundleCache(std::size_t capacity,
                       obs::Counter* hits = nullptr,
                       obs::Counter* misses = nullptr)
      : capacity_(capacity),
        hits_(hits ? hits : &own_hits_),
        misses_(misses ? misses : &own_misses_) {}

  /// Read + hash the file at `path`, returning the cached parse when the
  /// bytes were seen before. Throws BundleError on unreadable/invalid
  /// files. Exactly one hit or miss is counted per call; `cache_hit`
  /// (optional) reports which, for request-trace span details.
  std::shared_ptr<const ModelBundle> get(const std::string& path,
                                         bool* cache_hit = nullptr);

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::size_t size() const;

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const ModelBundle>>;

  std::size_t capacity_;
  mutable util::Mutex mutex_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_
      GUARDED_BY(mutex_);
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter* hits_;
  obs::Counter* misses_;
};

class ScoringEngine {
 public:
  explicit ScoringEngine(EngineConfig config = {});
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  const EngineConfig& config() const { return config_; }

  /// Synchronous scoring of an in-memory design against a bundle file.
  /// The bundle's stimulus profiles drive the golden simulation (they are
  /// part of the deployed artifact), not the design's own.
  ScoreResult score(const std::string& bundle_path,
                    const designs::Design& target, ScoreOptions opts = {});

  /// Synchronous scoring of a target path: a registered design name or a
  /// .v/.bench netlist file.
  ScoreResult score_path(const std::string& bundle_path,
                         const std::string& target_path,
                         ScoreOptions opts = {});

  /// Score a whole group of targets against one bundle with a SINGLE
  /// model forward: the per-target graphs become one block-diagonal
  /// adjacency, the features one row-stacked matrix. Because every
  /// target's rows only see their own block, each outcome is
  /// bitwise-identical to a lone score() of that target. Outcomes are
  /// positional; a target failing preflight gets its error without
  /// affecting the rest, an unreadable bundle fails every outcome.
  /// `trace_ids` (optional, targets.size() entries) carries the trace ids
  /// riding on each target — several when duplicate requests were
  /// collapsed onto it — so every coalesced request's trace records the
  /// shared bundle_load/golden_sim/forward spans. Ignores
  /// ScoreOptions::trace_id (per-target ids replace it).
  std::vector<BatchOutcome> score_batch(
      const std::string& bundle_path,
      const std::vector<designs::Design>& targets, ScoreOptions opts = {},
      const std::vector<std::vector<std::uint64_t>>* trace_ids = nullptr);

  /// Enqueue onto the worker pool; blocks while the queue is at capacity,
  /// or — when `queue_timeout` is set — gives up after that long with
  /// EngineError(kQueueTimeout) so callers (the fleet admission path) can
  /// shed load instead of hanging. Throws EngineError(kShutdown) after
  /// shutdown()/abort().
  std::future<ScoreResult> submit(
      std::string bundle_path, std::string target_path,
      ScoreOptions opts = {},
      std::optional<std::chrono::milliseconds> queue_timeout = std::nullopt);

  /// Stop accepting work, drain every queued job, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  /// Abrupt stop (a killed fleet shard): queued jobs fail immediately
  /// with EngineError(kAborted) so their clients can retry elsewhere;
  /// jobs already on a worker still finish. Does NOT join the workers —
  /// call shutdown() (or destroy the engine) to reap them.
  void abort();

  /// Pre-populate the bundle cache (the fleet hot-reload path warms the
  /// new bundle version on its owner shard). Throws BundleError on an
  /// unreadable or invalid bundle.
  void prewarm(const std::string& bundle_path);

  /// Jobs waiting in the queue right now (the admission-control input).
  std::size_t queue_depth() const;

  MetricsSnapshot metrics() const;

  /// One JSON object — uptime, counters, cache hit ratio, queue depth and
  /// the latency histograms (p50/p90/p99) — the payload of the daemon's
  /// METRICS command and the SIGINT drain log.
  std::string metrics_json() const;

  /// The engine's private instrument registry (read-only callers).
  const obs::Registry& metrics_registry() const { return registry_; }

  /// The request-trace sink wired in via EngineConfig (null when none).
  obs::RequestTraceCollector* trace_collector() const {
    return config_.traces;
  }

 private:
  struct Job {
    std::string bundle_path;
    std::string target_path;
    ScoreOptions opts;
    std::promise<ScoreResult> promise;
    /// Stamped by submit() only for traced jobs; feeds the queue_wait span.
    obs::TraceClock::time_point enqueued;
  };

  /// Everything score() derives from a target before the model forward:
  /// the partially-filled result (names, sites, stats timing), the
  /// standardized feature matrix and the graph whose adjacency the
  /// forward needs. Shared by the single and batched paths.
  struct PreparedTarget {
    ScoreResult result;
    ml::Matrix features;
    graphir::CircuitGraph graph;
  };

  PreparedTarget prepare_target(const ModelBundle& bundle,
                                const designs::Design& target,
                                const ScoreOptions& opts);

  void worker_loop();
  void run_job_batch(std::vector<Job> batch);

  EngineConfig config_;
  // Declared before cache_/instrument pointers: they borrow from it.
  obs::Registry registry_;
  BundleCache cache_;

  mutable util::Mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Job> queue_ GUARDED_BY(queue_mutex_);
  bool stopping_ GUARDED_BY(queue_mutex_) = false;
  std::vector<std::thread> workers_;  // touched only by the owner thread

  std::chrono::steady_clock::time_point started_;
  obs::Counter* requests_;
  obs::Counter* completed_;
  obs::Counter* errors_;
  obs::Counter* clone_hits_;
  obs::Counter* clone_misses_;
  obs::Counter* batches_;
  obs::Counter* batched_requests_;
  obs::Counter* collapsed_requests_;
  obs::Counter* submit_timeouts_;
  obs::Counter* aborted_jobs_;
  obs::Gauge* queue_depth_;
  obs::Histogram* request_ms_;
  obs::Histogram* load_ms_;
  obs::Histogram* stats_ms_;
  obs::Histogram* forward_ms_;
  obs::Histogram* batch_size_;
};

/// Resolve a score target: registered design name, or a .v/.bench file
/// parsed from disk (same convention as the CLI).
designs::Design load_score_target(const std::string& arg);

}  // namespace fcrit::serve
