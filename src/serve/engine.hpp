// The serving-side inference engine: netlist in, criticality scores out,
// no fault campaign and no training anywhere on the path.
//
// score() maps a parsed netlist -> graph -> §3.1 features (golden
// simulation replayed with the bundle's recorded stimulus/seed/cycles) ->
// standardized matrix -> classifier probabilities + regressor scores.
// Bundles are loaded through a thread-safe LRU cache keyed by file
// content hash, so repeated requests against the same artifact skip the
// parse. A fixed worker pool with a bounded queue serves concurrent
// requests (submit() blocks when the queue is full — backpressure, not
// unbounded memory), and atomic counters expose requests, cache hits and
// misses, per-stage latency sums and the queue-depth high-water mark.
// Every forward pass runs on a per-request clone of the bundle's models:
// GcnModel caches activations internally, so instances must not be shared
// across threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/designs/designs.hpp"
#include "src/netlist/netlist.hpp"
#include "src/serve/bundle.hpp"

namespace fcrit::serve {

struct EngineConfig {
  int threads = 4;
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 8;
};

struct ScoreOptions {
  /// Refuse (BundleError kNetlistHashMismatch) to score a netlist whose
  /// content hash differs from the one the bundle was trained on. Off by
  /// default: cross-netlist scoring is the train-once/infer-cheap use
  /// case; the flag guards bit-identical reproduction claims.
  bool strict_hash = false;
};

struct ScoreResult {
  std::string target_name;
  std::string bundle_design;
  bool netlist_matched = false;  // target hash == manifest hash
  bool has_regressor = false;

  /// Candidate fault sites (gates + flops), the rows worth ranking.
  std::vector<netlist::NodeId> sites;
  std::vector<std::string> node_names;  // per node id
  std::vector<double> proba;            // classifier P(Critical) per node id
  std::vector<int> predicted;           // classifier class per node id
  std::vector<double> score;            // regressor (proba when absent)

  double stats_seconds = 0.0;    // golden simulation + feature extraction
  double forward_seconds = 0.0;  // model clone + forward passes
};

/// The `sites` of a result ranked by descending score, truncated to n
/// (n <= 0 keeps all).
std::vector<netlist::NodeId> top_sites(const ScoreResult& result, int n);

struct MetricsSnapshot {
  std::uint64_t requests = 0;   // score attempts started
  std::uint64_t completed = 0;  // finished without throwing
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_high_water = 0;
  double load_seconds = 0.0;  // bundle fetch (cache hit or parse)
  double stats_seconds = 0.0;
  double forward_seconds = 0.0;
};

/// Thread-safe LRU of parsed bundles keyed by file content hash. Sharing
/// is by shared_ptr, so an entry evicted mid-request stays alive until
/// the request drops it.
class BundleCache {
 public:
  explicit BundleCache(std::size_t capacity) : capacity_(capacity) {}

  /// Read + hash the file at `path`, returning the cached parse when the
  /// bytes were seen before. Throws BundleError on unreadable/invalid
  /// files. Exactly one hit or miss is counted per call.
  std::shared_ptr<const ModelBundle> get(const std::string& path);

  std::uint64_t hits() const { return hits_.load(); }
  std::uint64_t misses() const { return misses_.load(); }
  std::size_t size() const;

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const ModelBundle>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

class ScoringEngine {
 public:
  explicit ScoringEngine(EngineConfig config = {});
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  const EngineConfig& config() const { return config_; }

  /// Synchronous scoring of an in-memory design against a bundle file.
  /// The bundle's stimulus profiles drive the golden simulation (they are
  /// part of the deployed artifact), not the design's own.
  ScoreResult score(const std::string& bundle_path,
                    const designs::Design& target, ScoreOptions opts = {});

  /// Synchronous scoring of a target path: a registered design name or a
  /// .v/.bench netlist file.
  ScoreResult score_path(const std::string& bundle_path,
                         const std::string& target_path,
                         ScoreOptions opts = {});

  /// Enqueue onto the worker pool; blocks while the queue is at capacity.
  /// Throws std::runtime_error after shutdown().
  std::future<ScoreResult> submit(std::string bundle_path,
                                  std::string target_path,
                                  ScoreOptions opts = {});

  /// Stop accepting work, drain every queued job, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  MetricsSnapshot metrics() const;

 private:
  struct Job {
    std::string bundle_path;
    std::string target_path;
    ScoreOptions opts;
    std::promise<ScoreResult> promise;
  };

  void worker_loop();

  EngineConfig config_;
  BundleCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Job> queue_;
  std::size_t queue_high_water_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::int64_t> load_nanos_{0};
  std::atomic<std::int64_t> stats_nanos_{0};
  std::atomic<std::int64_t> forward_nanos_{0};
};

/// Resolve a score target: registered design name, or a .v/.bench file
/// parsed from disk (same convention as the CLI).
designs::Design load_score_target(const std::string& arg);

}  // namespace fcrit::serve
