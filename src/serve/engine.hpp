// The serving-side inference engine: netlist in, criticality scores out,
// no fault campaign and no training anywhere on the path.
//
// score() maps a parsed netlist -> graph -> §3.1 features (golden
// simulation replayed with the bundle's recorded stimulus/seed/cycles) ->
// standardized matrix -> classifier probabilities + regressor scores.
// Bundles are loaded through a thread-safe LRU cache keyed by file
// content hash, so repeated requests against the same artifact skip the
// parse. A fixed worker pool with a bounded queue serves concurrent
// requests (submit() blocks when the queue is full — backpressure, not
// unbounded memory). Every engine owns a private obs::Registry whose
// instruments (request/stage latency histograms with p50/p90/p99, cache
// hit/miss counters, a queue-depth gauge with high-water mark) back both
// metrics() and the metrics_json() snapshot the daemon's METRICS command
// returns; a per-engine registry keeps concurrent engines from mixing
// counts.
// Every forward pass runs on a per-WORKER clone of the bundle's models:
// GcnModel caches activations internally, so instances must not be shared
// across threads. Each thread keeps a small thread_local cache of clones
// keyed by bundle identity (pinned by shared_ptr so a cache entry can
// never alias a recycled address), making the steady-state forward path
// clone-free; serve.model_clone_hits/misses count its effectiveness.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/designs/designs.hpp"
#include "src/netlist/netlist.hpp"
#include "src/obs/metrics.hpp"
#include "src/serve/bundle.hpp"

namespace fcrit::serve {

struct EngineConfig {
  int threads = 4;
  std::size_t queue_capacity = 64;
  std::size_t cache_capacity = 8;
};

struct ScoreOptions {
  /// Refuse (BundleError kNetlistHashMismatch) to score a netlist whose
  /// content hash differs from the one the bundle was trained on. Off by
  /// default: cross-netlist scoring is the train-once/infer-cheap use
  /// case; the flag guards bit-identical reproduction claims.
  bool strict_hash = false;
};

struct ScoreResult {
  std::string target_name;
  std::string bundle_design;
  bool netlist_matched = false;  // target hash == manifest hash
  bool has_regressor = false;

  /// Candidate fault sites (gates + flops), the rows worth ranking.
  std::vector<netlist::NodeId> sites;
  std::vector<std::string> node_names;  // per node id
  std::vector<double> proba;            // classifier P(Critical) per node id
  std::vector<int> predicted;           // classifier class per node id
  std::vector<double> score;            // regressor (proba when absent)

  double stats_seconds = 0.0;    // golden simulation + feature extraction
  double forward_seconds = 0.0;  // model clone + forward passes
};

/// The `sites` of a result ranked by descending score, truncated to n
/// (n <= 0 keeps all).
std::vector<netlist::NodeId> top_sites(const ScoreResult& result, int n);

struct MetricsSnapshot {
  std::uint64_t requests = 0;   // score attempts started
  std::uint64_t completed = 0;  // finished without throwing
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t queue_depth = 0;  // jobs waiting right now
  std::size_t queue_high_water = 0;
  double uptime_seconds = 0.0;  // since engine construction
  double load_seconds = 0.0;  // bundle fetch (cache hit or parse)
  double stats_seconds = 0.0;
  double forward_seconds = 0.0;
  /// End-to-end latency of successful score() calls; p50/p90/p99 via
  /// request_ms.percentile(). All duration fields come from one histogram
  /// snapshot, so the derived mean can never exceed the observed max (the
  /// torn load_nanos_/completed_ read the hand-rolled atomics had).
  obs::HistogramSnapshot request_ms;

  double cache_hit_ratio() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : double(cache_hits) / double(total);
  }
};

/// Thread-safe LRU of parsed bundles keyed by file content hash. Sharing
/// is by shared_ptr, so an entry evicted mid-request stays alive until
/// the request drops it. Hit/miss counts go to registry counters when the
/// owner provides them (the ScoringEngine does), else to private ones.
class BundleCache {
 public:
  explicit BundleCache(std::size_t capacity,
                       obs::Counter* hits = nullptr,
                       obs::Counter* misses = nullptr)
      : capacity_(capacity),
        hits_(hits ? hits : &own_hits_),
        misses_(misses ? misses : &own_misses_) {}

  /// Read + hash the file at `path`, returning the cached parse when the
  /// bytes were seen before. Throws BundleError on unreadable/invalid
  /// files. Exactly one hit or miss is counted per call.
  std::shared_ptr<const ModelBundle> get(const std::string& path);

  std::uint64_t hits() const { return hits_->value(); }
  std::uint64_t misses() const { return misses_->value(); }
  std::size_t size() const;

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const ModelBundle>>;

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  obs::Counter own_hits_;
  obs::Counter own_misses_;
  obs::Counter* hits_;
  obs::Counter* misses_;
};

class ScoringEngine {
 public:
  explicit ScoringEngine(EngineConfig config = {});
  ~ScoringEngine();

  ScoringEngine(const ScoringEngine&) = delete;
  ScoringEngine& operator=(const ScoringEngine&) = delete;

  const EngineConfig& config() const { return config_; }

  /// Synchronous scoring of an in-memory design against a bundle file.
  /// The bundle's stimulus profiles drive the golden simulation (they are
  /// part of the deployed artifact), not the design's own.
  ScoreResult score(const std::string& bundle_path,
                    const designs::Design& target, ScoreOptions opts = {});

  /// Synchronous scoring of a target path: a registered design name or a
  /// .v/.bench netlist file.
  ScoreResult score_path(const std::string& bundle_path,
                         const std::string& target_path,
                         ScoreOptions opts = {});

  /// Enqueue onto the worker pool; blocks while the queue is at capacity.
  /// Throws std::runtime_error after shutdown().
  std::future<ScoreResult> submit(std::string bundle_path,
                                  std::string target_path,
                                  ScoreOptions opts = {});

  /// Stop accepting work, drain every queued job, join the workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  MetricsSnapshot metrics() const;

  /// One JSON object — uptime, counters, cache hit ratio, queue depth and
  /// the latency histograms (p50/p90/p99) — the payload of the daemon's
  /// METRICS command and the SIGINT drain log.
  std::string metrics_json() const;

  /// The engine's private instrument registry (read-only callers).
  const obs::Registry& metrics_registry() const { return registry_; }

 private:
  struct Job {
    std::string bundle_path;
    std::string target_path;
    ScoreOptions opts;
    std::promise<ScoreResult> promise;
  };

  void worker_loop();

  EngineConfig config_;
  // Declared before cache_/instrument pointers: they borrow from it.
  obs::Registry registry_;
  BundleCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_not_empty_;
  std::condition_variable queue_not_full_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::chrono::steady_clock::time_point started_;
  obs::Counter* requests_;
  obs::Counter* completed_;
  obs::Counter* errors_;
  obs::Counter* clone_hits_;
  obs::Counter* clone_misses_;
  obs::Gauge* queue_depth_;
  obs::Histogram* request_ms_;
  obs::Histogram* load_ms_;
  obs::Histogram* stats_ms_;
  obs::Histogram* forward_ms_;
};

/// Resolve a score target: registered design name, or a .v/.bench file
/// parsed from disk (same convention as the CLI).
designs::Design load_score_target(const std::string& arg);

}  // namespace fcrit::serve
