#include "src/ml/trainer.hpp"

#include <memory>

#include "src/ml/metrics.hpp"
#include "src/ml/optimizer.hpp"
#include "src/obs/log.hpp"
#include "src/obs/metrics.hpp"
#include "src/util/parallel.hpp"
#include "src/util/timer.hpp"

namespace fcrit::ml {

namespace {

/// Snapshot/restore of model parameters for early stopping.
class ParamSnapshot {
 public:
  explicit ParamSnapshot(GcnModel& model) : model_(&model) {}

  void capture() {
    values_.clear();
    for (const Param& p : model_->params()) values_.push_back(*p.value);
  }

  void restore() {
    if (values_.empty()) return;
    auto params = model_->params();
    for (std::size_t i = 0; i < params.size(); ++i)
      *params[i].value = values_[i];
  }

 private:
  GcnModel* model_;
  std::vector<Matrix> values_;
};

}  // namespace

TrainHistory train_classifier(GcnModel& model, const SparseMatrix& adj,
                              const Matrix& x, const std::vector<int>& labels,
                              const std::vector<int>& train_idx,
                              const std::vector<int>& val_idx,
                              const TrainConfig& config) {
  model.set_adjacency(&adj);
  Adam opt(model.params(), config.lr, config.weight_decay);
  ParamSnapshot best(model);
  TrainHistory history;
  history.best_val_metric = -1.0;
  int since_best = 0;
  obs::Histogram& epoch_ms =
      obs::registry().histogram("ml.classifier.epoch_ms");
  obs::registry().gauge("ml.jobs").set(util::num_threads());

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    util::Timer epoch_timer;
    const Matrix logp = model.forward(x, /*training=*/true);
    Matrix grad;
    const double loss = masked_nll(logp, labels, train_idx, grad);
    opt.zero_grad();
    model.backward(grad);
    opt.step();

    const Matrix eval = model.forward(x, /*training=*/false);
    const double val_acc = accuracy(predict_labels(eval), labels, val_idx);
    history.train_loss.push_back(loss);
    history.val_metric.push_back(val_acc);
    epoch_ms.observe(epoch_timer.millis());

    if (val_acc > history.best_val_metric) {
      history.best_val_metric = val_acc;
      history.best_epoch = epoch;
      best.capture();
      since_best = 0;
    } else if (++since_best >= config.patience && config.patience > 0) {
      break;
    }
    if (config.verbose && epoch % config.log_every == 0)
      obs::logf(obs::LogLevel::kInfo, "epoch %4d  loss %.4f  val_acc %.4f",
                epoch, loss, val_acc);
  }
  best.restore();
  obs::logf(obs::LogLevel::kDebug,
            "train_classifier: %zu epochs, best val_acc %.4f at epoch %d",
            history.train_loss.size(), history.best_val_metric,
            history.best_epoch);
  return history;
}

TrainHistory train_regressor(GcnModel& model, const SparseMatrix& adj,
                             const Matrix& x,
                             const std::vector<double>& targets,
                             const std::vector<int>& train_idx,
                             const std::vector<int>& val_idx,
                             const TrainConfig& config) {
  model.set_adjacency(&adj);
  Adam opt(model.params(), config.lr, config.weight_decay);
  ParamSnapshot best(model);
  TrainHistory history;
  history.best_val_metric = -1e30;
  int since_best = 0;
  obs::Histogram& epoch_ms =
      obs::registry().histogram("ml.regressor.epoch_ms");
  obs::registry().gauge("ml.jobs").set(util::num_threads());

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    util::Timer epoch_timer;
    const Matrix pred = model.forward(x, /*training=*/true);
    Matrix grad;
    const double loss = masked_mse(pred, targets, train_idx, grad);
    opt.zero_grad();
    model.backward(grad);
    opt.step();

    const Matrix eval = model.forward(x, /*training=*/false);
    Matrix unused;
    const double val_mse = masked_mse(eval, targets, val_idx, unused);
    history.train_loss.push_back(loss);
    history.val_metric.push_back(-val_mse);
    epoch_ms.observe(epoch_timer.millis());

    if (-val_mse > history.best_val_metric) {
      history.best_val_metric = -val_mse;
      history.best_epoch = epoch;
      best.capture();
      since_best = 0;
    } else if (++since_best >= config.patience && config.patience > 0) {
      break;
    }
    if (config.verbose && epoch % config.log_every == 0)
      obs::logf(obs::LogLevel::kInfo, "epoch %4d  loss %.5f  val_mse %.5f",
                epoch, loss, val_mse);
  }
  best.restore();
  obs::logf(obs::LogLevel::kDebug,
            "train_regressor: %zu epochs, best -val_mse %.5f at epoch %d",
            history.train_loss.size(), history.best_val_metric,
            history.best_epoch);
  return history;
}

}  // namespace fcrit::ml
