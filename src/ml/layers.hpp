// Neural-network layers with explicit forward/backward passes.
//
// The stack is deliberately autograd-free: each layer caches what its
// backward pass needs, and models chain backward() calls in reverse. The
// GCNConv layer implements the Kipf-Welling propagation of Eq. 2,
//   H' = Â (H W + b),  Â = D^-1/2 (A + I) D^-1/2,
// where Â is supplied externally (see graphir::normalized_adjacency) and
// can be swapped per-forward — GNNExplainer exploits this to run the
// trained model under a masked adjacency and to collect d(loss)/d(edge).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ml/matrix.hpp"
#include "src/ml/sparse.hpp"

namespace fcrit::ml {

/// A trainable tensor and its gradient accumulator.
struct Param {
  Matrix* value = nullptr;
  Matrix* grad = nullptr;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual Matrix forward(const Matrix& x, bool training) = 0;
  virtual Matrix backward(const Matrix& grad_out) = 0;
  /// Append this layer's trainable parameters.
  virtual void collect_params(std::vector<Param>& out) { (void)out; }
  virtual std::string describe() const = 0;
};

/// Graph convolution: Y = Â (X W + b).
class GcnConv final : public Layer {
 public:
  GcnConv(int in_features, int out_features, util::Rng& rng,
          bool with_bias = true);

  /// The adjacency used by subsequent forward/backward calls. Must outlive
  /// them. Swappable between calls (full graph vs. explainer-masked graph).
  void set_adjacency(const SparseMatrix* adj) { adj_ = adj; }

  /// When non-null, backward() accumulates dL/dÂ[k] for every stored entry
  /// into this buffer (resized to nnz). Used by GNNExplainer.
  void set_edge_grad_buffer(std::vector<float>* buf) { edge_grad_ = buf; }

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  std::string describe() const override;

  int in_features() const { return w_.rows(); }
  int out_features() const { return w_.cols(); }
  const Matrix& weight() const { return w_; }
  Matrix& weight() { return w_; }

 private:
  Matrix w_, w_grad_;
  Matrix b_, b_grad_;  // 1 x out
  bool with_bias_;
  const SparseMatrix* adj_ = nullptr;
  std::vector<float>* edge_grad_ = nullptr;
  Matrix cached_x_;  // input
  Matrix cached_z_;  // X W + b (pre-propagation)
};

/// Dense layer: Y = X W + b (no propagation). Used by the MLP baseline.
class Linear final : public Layer {
 public:
  Linear(int in_features, int out_features, util::Rng& rng);

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& grad_out) override;
  void collect_params(std::vector<Param>& out) override;
  std::string describe() const override;

 private:
  Matrix w_, w_grad_;
  Matrix b_, b_grad_;
  Matrix cached_x_;
};

class Relu final : public Layer {
 public:
  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string describe() const override { return "ReLU"; }

 private:
  Matrix mask_;
};

/// Inverted dropout; identity at inference.
class Dropout final : public Layer {
 public:
  Dropout(double rate, util::Rng& rng) : rate_(rate), rng_(&rng) {}

  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string describe() const override;

 private:
  double rate_;
  util::Rng* rng_;
  Matrix mask_;
};

/// Row-wise log-softmax.
class LogSoftmax final : public Layer {
 public:
  Matrix forward(const Matrix& x, bool training) override;
  Matrix backward(const Matrix& grad_out) override;
  std::string describe() const override { return "LogSoftmax"; }

 private:
  Matrix cached_logp_;
};

// ---- losses ---------------------------------------------------------------

/// Negative log-likelihood over a node subset. `logp` is N x C log-probs,
/// `labels` one class id per node. Returns the mean loss over `mask` and
/// writes dL/dlogp (zero outside the mask) into `grad`.
double masked_nll(const Matrix& logp, const std::vector<int>& labels,
                  const std::vector<int>& mask, Matrix& grad);

/// Mean squared error over a node subset; `pred` is N x 1.
double masked_mse(const Matrix& pred, const std::vector<double>& target,
                  const std::vector<int>& mask, Matrix& grad);

}  // namespace fcrit::ml
