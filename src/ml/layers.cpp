#include "src/ml/layers.hpp"

#include <cmath>
#include <stdexcept>

#include "src/ml/kernel_stats.hpp"
#include "src/util/parallel.hpp"

namespace fcrit::ml {

// ---- GcnConv ----------------------------------------------------------------

GcnConv::GcnConv(int in_features, int out_features, util::Rng& rng,
                 bool with_bias)
    : w_(Matrix::xavier(in_features, out_features, rng)),
      w_grad_(in_features, out_features),
      b_(1, out_features),
      b_grad_(1, out_features),
      with_bias_(with_bias) {}

Matrix GcnConv::forward(const Matrix& x, bool /*training*/) {
  if (!adj_)
    throw std::runtime_error("GcnConv::forward: adjacency not set");
  if (x.cols() != w_.rows())
    throw std::runtime_error("GcnConv::forward: feature dim mismatch");
  cached_x_ = x;
  Matrix z = matmul(x, w_);
  if (with_bias_) {
    for (int i = 0; i < z.rows(); ++i) {
      auto zrow = z.row(i);
      for (int j = 0; j < z.cols(); ++j) zrow[j] += b_(0, j);
    }
  }
  cached_z_ = z;
  return adj_->spmm(z);
}

Matrix GcnConv::backward(const Matrix& grad_out) {
  if (!adj_)
    throw std::runtime_error("GcnConv::backward: adjacency not set");
  // Y = Â Z  =>  dL/dZ = Âᵀ G; edge grads dL/dÂ[u,v] = <G.row(u), Z.row(v)>.
  if (edge_grad_) adj_->accumulate_edge_grad(grad_out, cached_z_, *edge_grad_);
  const Matrix gz = adj_->spmm_t(grad_out);
  // Z = X W + b.
  w_grad_ += matmul_tn(cached_x_, gz);
  if (with_bias_) b_grad_ += col_sum(gz);
  return matmul_nt(gz, w_);
}

void GcnConv::collect_params(std::vector<Param>& out) {
  out.push_back({&w_, &w_grad_});
  if (with_bias_) out.push_back({&b_, &b_grad_});
}

std::string GcnConv::describe() const {
  return "GCNConv(" + std::to_string(w_.rows()) + " -> " +
         std::to_string(w_.cols()) + ")";
}

// ---- Linear -------------------------------------------------------------------

Linear::Linear(int in_features, int out_features, util::Rng& rng)
    : w_(Matrix::xavier(in_features, out_features, rng)),
      w_grad_(in_features, out_features),
      b_(1, out_features),
      b_grad_(1, out_features) {}

Matrix Linear::forward(const Matrix& x, bool /*training*/) {
  if (x.cols() != w_.rows())
    throw std::runtime_error("Linear::forward: feature dim mismatch");
  cached_x_ = x;
  Matrix y = matmul(x, w_);
  for (int i = 0; i < y.rows(); ++i) {
    auto yrow = y.row(i);
    for (int j = 0; j < y.cols(); ++j) yrow[j] += b_(0, j);
  }
  return y;
}

Matrix Linear::backward(const Matrix& grad_out) {
  w_grad_ += matmul_tn(cached_x_, grad_out);
  b_grad_ += col_sum(grad_out);
  return matmul_nt(grad_out, w_);
}

void Linear::collect_params(std::vector<Param>& out) {
  out.push_back({&w_, &w_grad_});
  out.push_back({&b_, &b_grad_});
}

std::string Linear::describe() const {
  return "Linear(" + std::to_string(w_.rows()) + " -> " +
         std::to_string(w_.cols()) + ")";
}

// ---- Relu ---------------------------------------------------------------------

Matrix Relu::forward(const Matrix& x, bool /*training*/) {
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  // Elementwise per row — row sharding is trivially order-preserving.
  util::parallel_for(0, x.rows(), detail::row_grain(x.cols()),
                     [&](std::int64_t r0, std::int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      auto yrow = y.row(i);
      auto mrow = mask_.row(i);
      for (int j = 0; j < x.cols(); ++j) {
        if (yrow[j] > 0.0f) {
          mrow[j] = 1.0f;
        } else {
          yrow[j] = 0.0f;
        }
      }
    }
  });
  return y;
}

Matrix Relu::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  g.hadamard_(mask_);
  return g;
}

// ---- Dropout -------------------------------------------------------------------

// Deliberately serial: the mask consumes one RNG draw per element in row-major
// order, and that draw order must not depend on the thread count.
Matrix Dropout::forward(const Matrix& x, bool training) {
  if (!training || rate_ <= 0.0) {
    mask_ = Matrix();
    return x;
  }
  const float keep = static_cast<float>(1.0 - rate_);
  const float scale = 1.0f / keep;
  mask_ = Matrix(x.rows(), x.cols());
  Matrix y = x;
  for (int i = 0; i < x.rows(); ++i) {
    auto yrow = y.row(i);
    auto mrow = mask_.row(i);
    for (int j = 0; j < x.cols(); ++j) {
      if (rng_->next_float() < keep) {
        mrow[j] = scale;
        yrow[j] *= scale;
      } else {
        yrow[j] = 0.0f;
      }
    }
  }
  return y;
}

Matrix Dropout::backward(const Matrix& grad_out) {
  if (mask_.empty()) return grad_out;
  Matrix g = grad_out;
  g.hadamard_(mask_);
  return g;
}

std::string Dropout::describe() const {
  return "Dropout(" + std::to_string(rate_) + ")";
}

// ---- LogSoftmax -----------------------------------------------------------------

Matrix LogSoftmax::forward(const Matrix& x, bool /*training*/) {
  Matrix y = x;
  // Each row's reduction stays within one chunk, so the j-order (and hence
  // the FP result) matches the serial loop exactly.
  util::parallel_for(0, x.rows(), detail::row_grain(3 * x.cols()),
                     [&](std::int64_t r0, std::int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      auto yrow = y.row(i);
      float mx = yrow[0];
      for (int j = 1; j < x.cols(); ++j) mx = std::max(mx, yrow[j]);
      float sum = 0.0f;
      for (int j = 0; j < x.cols(); ++j) sum += std::exp(yrow[j] - mx);
      const float lse = mx + std::log(sum);
      for (int j = 0; j < x.cols(); ++j) yrow[j] -= lse;
    }
  });
  cached_logp_ = y;
  return y;
}

Matrix LogSoftmax::backward(const Matrix& grad_out) {
  // y = x - lse(x); dL/dx = g - softmax(x) * sum_j(g_j) per row.
  Matrix g = grad_out;
  for (int i = 0; i < g.rows(); ++i) {
    auto grow = g.row(i);
    const auto lrow = cached_logp_.row(i);
    float gsum = 0.0f;
    for (int j = 0; j < g.cols(); ++j) gsum += grow[j];
    for (int j = 0; j < g.cols(); ++j)
      grow[j] -= std::exp(lrow[j]) * gsum;
  }
  return g;
}

// ---- losses ------------------------------------------------------------------------

double masked_nll(const Matrix& logp, const std::vector<int>& labels,
                  const std::vector<int>& mask, Matrix& grad) {
  if (mask.empty()) throw std::runtime_error("masked_nll: empty mask");
  grad = Matrix(logp.rows(), logp.cols());
  double loss = 0.0;
  const float inv = 1.0f / static_cast<float>(mask.size());
  for (const int i : mask) {
    const int y = labels[static_cast<std::size_t>(i)];
    loss -= static_cast<double>(logp(i, y));
    grad(i, y) = -inv;
  }
  return loss / static_cast<double>(mask.size());
}

double masked_mse(const Matrix& pred, const std::vector<double>& target,
                  const std::vector<int>& mask, Matrix& grad) {
  if (mask.empty()) throw std::runtime_error("masked_mse: empty mask");
  if (pred.cols() != 1)
    throw std::runtime_error("masked_mse: prediction must be N x 1");
  grad = Matrix(pred.rows(), 1);
  double loss = 0.0;
  const float inv = 2.0f / static_cast<float>(mask.size());
  for (const int i : mask) {
    const double d = static_cast<double>(pred(i, 0)) -
                     target[static_cast<std::size_t>(i)];
    loss += d * d;
    grad(i, 0) = static_cast<float>(d) * inv;
  }
  return loss / static_cast<double>(mask.size());
}

}  // namespace fcrit::ml
