#include "src/ml/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "src/ml/kernel_stats.hpp"
#include "src/util/parallel.hpp"

namespace fcrit::ml {

Matrix Matrix::full(int rows, int cols, float value) {
  Matrix m(rows, cols);
  m.fill(value);
  return m;
}

Matrix Matrix::randn(int rows, int cols, util::Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (float& v : m.data_)
    v = static_cast<float>(rng.next_gaussian()) * stddev;
  return m;
}

Matrix Matrix::xavier(int fan_in, int fan_out, util::Rng& rng) {
  Matrix m(fan_in, fan_out);
  const float s = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (float& v : m.data_) v = (2.0f * rng.next_float() - 1.0f) * s;
  return m;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::hadamard_(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

double Matrix::frob2() const {
  double s = 0.0;
  for (const float v : data_) s += static_cast<double>(v) * v;
  return s;
}

std::string Matrix::shape_string() const {
  return "[" + std::to_string(rows_) + " x " + std::to_string(cols_) + "]";
}

// The three matmul variants shard the OUTPUT rows of C across the shared
// pool (util::parallel_for, static partitioning). Every output row is
// accumulated by exactly one thread in the same k-order as the serial
// loop, so results are bitwise-identical for any thread count — the
// guarantee tests/kernel_determinism_test.cpp enforces.

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  static obs::Histogram& hist =
      obs::registry().histogram("ml.kernel.matmul_ms");
  detail::KernelScope scope("matmul", hist);
  Matrix c(a.rows(), b.cols());
  const std::int64_t per_row =
      static_cast<std::int64_t>(a.cols()) * b.cols();
  util::parallel_for(0, a.rows(), detail::row_grain(per_row),
                     [&](std::int64_t r0, std::int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      for (int k = 0; k < a.cols(); ++k) {
        const float aik = a(i, k);
        if (aik == 0.0f) continue;
        const auto brow = b.row(k);
        auto crow = c.row(i);
        for (int j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
      }
    }
  });
  return c;
}

Matrix matmul_tn(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  static obs::Histogram& hist =
      obs::registry().histogram("ml.kernel.matmul_tn_ms");
  detail::KernelScope scope("matmul_tn", hist);
  Matrix c(a.cols(), b.cols());
  // C.row(i) sums a(k, i) * B.row(k) over k; sharding by i keeps that
  // k-order per output row (each chunk re-walks A's rows but touches only
  // its own columns of A / rows of C).
  const std::int64_t per_row =
      static_cast<std::int64_t>(a.rows()) * b.cols();
  util::parallel_for(0, a.cols(), detail::row_grain(per_row),
                     [&](std::int64_t r0, std::int64_t r1) {
    const int i0 = static_cast<int>(r0), i1 = static_cast<int>(r1);
    for (int k = 0; k < a.rows(); ++k) {
      const auto arow = a.row(k);
      const auto brow = b.row(k);
      for (int i = i0; i < i1; ++i) {
        const float aki = arow[i];
        if (aki == 0.0f) continue;
        auto crow = c.row(i);
        for (int j = 0; j < b.cols(); ++j) crow[j] += aki * brow[j];
      }
    }
  });
  return c;
}

Matrix matmul_nt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  static obs::Histogram& hist =
      obs::registry().histogram("ml.kernel.matmul_nt_ms");
  detail::KernelScope scope("matmul_nt", hist);
  Matrix c(a.rows(), b.rows());
  const std::int64_t per_row =
      static_cast<std::int64_t>(a.cols()) * b.rows();
  util::parallel_for(0, a.rows(), detail::row_grain(per_row),
                     [&](std::int64_t r0, std::int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const auto arow = a.row(i);
      for (int j = 0; j < b.rows(); ++j) {
        const auto brow = b.row(j);
        float s = 0.0f;
        for (int k = 0; k < a.cols(); ++k) s += arow[k] * brow[k];
        c(i, j) = s;
      }
    }
  });
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i)
    for (int j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix col_sum(const Matrix& a) {
  Matrix s(1, a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    for (int j = 0; j < a.cols(); ++j) s(0, j) += arow[j];
  }
  return s;
}

}  // namespace fcrit::ml
