// The GCN classifier/regressor of §3.3-3.4.
//
// The default configuration reproduces the paper's Table 1 exactly:
//   GCNConv(F -> 16), ReLU,
//   GCNConv(16 -> 32), ReLU, Dropout(0.3),
//   GCNConv(32 -> 64), ReLU,
//   GCNConv(64 -> 2), LogSoftmax.
// The regressor variant (§3.4) removes the LogSoftmax and sets the output
// dimensionality to 1, yielding continuous criticality scores.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/ml/layers.hpp"

namespace fcrit::ml {

struct GcnConfig {
  std::vector<int> hidden = {16, 32, 64};  // conv widths before the head
  int output_dim = 2;        // 2 classes, or 1 for regression
  bool log_softmax = true;   // false for the regressor
  double dropout = 0.3;
  int dropout_after = 1;     // insert Dropout after hidden conv #k (-1: none)
  std::uint64_t seed = 42;

  static GcnConfig classifier() { return {}; }
  static GcnConfig regressor() {
    GcnConfig c;
    c.output_dim = 1;
    c.log_softmax = false;
    return c;
  }
};

class GcnModel {
 public:
  GcnModel(int in_features, GcnConfig config);

  /// Adjacency used by subsequent forward/backward calls; must outlive them.
  void set_adjacency(const SparseMatrix* adj);

  /// When non-null, every GcnConv backward accumulates its dL/dÂ into this
  /// buffer (summed across layers). GNNExplainer's edge-mask gradient.
  void set_edge_grad_buffer(std::vector<float>* buf);

  /// N x output_dim output (log-probabilities for the classifier).
  /// NOT safe for concurrent callers on one instance (layers cache their
  /// activations between forward and backward): a second thread entering
  /// while a pass is in flight gets std::logic_error instead of silently
  /// corrupted activations — clone per thread via ml::clone_gcn.
  Matrix forward(const Matrix& x, bool training);

  /// Backpropagate; returns dL/dX (needed by the explainer's feature mask).
  /// Same single-caller contract as forward().
  Matrix backward(const Matrix& grad_out);

  std::vector<Param> params();
  void zero_grad();

  /// Deep copy of all parameter values from another model with identical
  /// architecture (early-stopping snapshot restore).
  void copy_params_from(const GcnModel& other);

  int in_features() const { return in_features_; }
  const GcnConfig& config() const { return config_; }

  /// Table-1-style architecture dump, one layer per line.
  std::string describe() const;

 private:
  // Scoped guard: flips *flag true on entry, throws std::logic_error if it
  // already was (two threads inside one model), restores on exit.
  class UseGuard {
   public:
    explicit UseGuard(std::atomic<bool>& flag);
    ~UseGuard();

   private:
    std::atomic<bool>& flag_;
  };

  int in_features_;
  GcnConfig config_;
  // Dropout layers keep a pointer to this Rng, so it lives on the heap to
  // stay at a stable address when the model itself is moved.
  std::unique_ptr<util::Rng> rng_;
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<GcnConv*> convs_;
  // Heap-allocated so the implicit move ctor stays available; detects
  // concurrent forward/backward on one instance (see forward()).
  std::unique_ptr<std::atomic<bool>> in_use_;
};

/// argmax over each row; returns one class id per node.
std::vector<int> predict_labels(const Matrix& out);

/// P(class 1) per node from log-probabilities.
std::vector<double> class1_probability(const Matrix& logp);

}  // namespace fcrit::ml
