// SGC — Simplifying Graph Convolutional Networks (Wu et al., ICML'19; the
// paper's reference [12]). Removes the nonlinearities of the GCN: the
// K-hop propagated features S = Â^K X are computed once, and a single
// linear layer + softmax is trained on them. Serves as the structural
// middle ground between the graph-blind baselines and the full GCN in the
// model-family ablation bench.
#pragma once

#include <cstdint>
#include <vector>

#include "src/ml/matrix.hpp"
#include "src/ml/sparse.hpp"

namespace fcrit::ml {

class SgcClassifier {
 public:
  struct Config {
    int k = 2;  // propagation depth
    int epochs = 300;
    double lr = 0.05;
    double weight_decay = 1e-4;
    std::uint64_t seed = 21;
  };

  SgcClassifier() : SgcClassifier(Config{}) {}
  explicit SgcClassifier(Config config) : config_(config) {}

  /// Train on the rows in `train_idx`; `adj` should be the symmetric
  /// normalized adjacency (Eq. 2).
  void fit(const SparseMatrix& adj, const Matrix& x,
           const std::vector<int>& labels, const std::vector<int>& train_idx);

  /// P(class 1) for every node (uses the propagated features cached by
  /// fit(); the graph is transductive, so predictions cover all nodes).
  std::vector<double> predict_proba() const;
  std::vector<int> predict_labels() const;

  const Matrix& propagated_features() const { return s_; }

 private:
  Config config_;
  Matrix s_;            // Â^K X
  std::vector<double> w_;  // (F+1) x 2 flattened, bias last row
};

}  // namespace fcrit::ml
