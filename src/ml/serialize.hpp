// Model persistence: save/load a trained GCN (architecture + weights) in a
// small self-describing text format, so a model trained once on a design
// can be shipped and reused for inference without re-running the FI
// campaign. The feature Standardizer serializes alongside (its statistics
// are part of the deployed artifact).
#pragma once

#include <iosfwd>
#include <string>

#include "src/graphir/features.hpp"
#include "src/ml/gcn.hpp"

namespace fcrit::ml {

void save_gcn(const GcnModel& model, std::ostream& os);
GcnModel load_gcn(std::istream& is);

void save_standardizer(const graphir::Standardizer& s, std::ostream& os);
graphir::Standardizer load_standardizer(std::istream& is);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_gcn_file(const GcnModel& model, const std::string& path);
GcnModel load_gcn_file(const std::string& path);
void save_standardizer_file(const graphir::Standardizer& s,
                            const std::string& path);
graphir::Standardizer load_standardizer_file(const std::string& path);

/// Deep copy via a fresh model of the same architecture. Serving uses this
/// to give each request its own forward-pass workspace (GcnModel caches
/// activations between forward and backward, so sharing one instance
/// across threads would race).
GcnModel clone_gcn(const GcnModel& model);

/// Read one whitespace-delimited token and require it to equal `expected`;
/// throws std::runtime_error otherwise. Exposed so composite formats
/// (serve::ModelBundle) parse their section headers the same way.
void expect_token(std::istream& is, const std::string& expected);

}  // namespace fcrit::ml
