// Evaluation metrics of §4.1: accuracy, confusion counts, ROC curve,
// AUC, plus correlation measures used to check regression/classification
// conformity (§4.2.2).
#pragma once

#include <string>
#include <vector>

namespace fcrit::ml {

struct Confusion {
  int tp = 0, fp = 0, tn = 0, fn = 0;

  int total() const { return tp + fp + tn + fn; }
  double accuracy() const;
  double precision() const;
  double recall() const;   // true-positive rate
  double fpr() const;      // false-positive rate
  double f1() const;
  std::string to_string() const;
};

/// Confusion counts over a node subset; class 1 is "positive" (Critical).
Confusion confusion(const std::vector<int>& predicted,
                    const std::vector<int>& labels,
                    const std::vector<int>& subset);

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& labels,
                const std::vector<int>& subset);

struct RocPoint {
  double fpr = 0.0;
  double tpr = 0.0;
  double threshold = 0.0;
};

/// ROC curve over a node subset from class-1 scores. Points are ordered by
/// descending threshold, from (0,0) to (1,1).
std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                const std::vector<int>& subset);

/// Area under the ROC curve (trapezoidal).
double auc(const std::vector<RocPoint>& curve);

/// Convenience: AUC directly from scores.
double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels,
               const std::vector<int>& subset);

double pearson(const std::vector<double>& a, const std::vector<double>& b);
double spearman(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace fcrit::ml
