// Linear soft-margin SVM trained with the Pegasos primal sub-gradient
// method; probabilities come from a Platt-style sigmoid fitted on the
// training margins.
#pragma once

#include <cstdint>

#include "src/ml/baselines/baseline.hpp"

namespace fcrit::ml {

class LinearSvm final : public BaselineClassifier {
 public:
  struct Config {
    int epochs = 60;        // passes over the training set
    double lambda = 1e-3;   // regularization
    std::uint64_t seed = 3;
  };

  LinearSvm() : LinearSvm(Config{}) {}
  explicit LinearSvm(Config config) : config_(config) {}

  void fit(const Matrix& x, const std::vector<int>& labels,
           const std::vector<int>& train_idx) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "SVM"; }

  /// Raw decision margin per row (before the Platt sigmoid).
  std::vector<double> decision_function(const Matrix& x) const;

 private:
  Config config_;
  std::vector<double> w_;  // size F+1, bias last
  double platt_a_ = 1.0;
  double platt_b_ = 0.0;
};

}  // namespace fcrit::ml
