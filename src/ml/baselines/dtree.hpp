// CART decision tree (Gini impurity) — the unit learner of the Random
// Forest baseline, and usable standalone.
#pragma once

#include <cstdint>
#include <span>

#include "src/ml/baselines/baseline.hpp"
#include "src/util/rng.hpp"

namespace fcrit::ml {

class DecisionTree final : public BaselineClassifier {
 public:
  struct Config {
    int max_depth = 8;
    int min_samples_leaf = 2;
    /// Features considered per split: -1 = all, otherwise a random subset
    /// of this size (Random Forest style).
    int max_features = -1;
    std::uint64_t seed = 4;
  };

  DecisionTree() : DecisionTree(Config{}) {}
  explicit DecisionTree(Config config) : config_(config) {}

  void fit(const Matrix& x, const std::vector<int>& labels,
           const std::vector<int>& train_idx) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "DT"; }

  double predict_one(std::span<const float> row) const;

  std::size_t node_count() const { return nodes_.size(); }
  int depth() const;

 private:
  struct Node {
    int feature = -1;       // -1: leaf
    float threshold = 0.0f; // go left if value <= threshold
    int left = -1;
    int right = -1;
    double p1 = 0.5;        // class-1 fraction at this node
  };

  int build(const Matrix& x, const std::vector<int>& labels,
            std::vector<int>& idx, int begin, int end, int depth,
            util::Rng& rng);

  Config config_;
  std::vector<Node> nodes_;
};

}  // namespace fcrit::ml
