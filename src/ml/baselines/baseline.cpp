#include "src/ml/baselines/baseline.hpp"

#include "src/ml/baselines/ebm.hpp"
#include "src/ml/baselines/logreg.hpp"
#include "src/ml/baselines/mlp.hpp"
#include "src/ml/baselines/rforest.hpp"
#include "src/ml/baselines/svm.hpp"

namespace fcrit::ml {

std::vector<int> labels_from_proba(const std::vector<double>& proba,
                                   double threshold) {
  std::vector<int> labels(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i)
    labels[i] = proba[i] >= threshold ? 1 : 0;
  return labels;
}

std::vector<std::unique_ptr<BaselineClassifier>> make_all_baselines(
    std::uint64_t seed) {
  std::vector<std::unique_ptr<BaselineClassifier>> out;
  {
    MlpClassifier::Config c;
    c.seed = seed ^ 0x11;
    out.push_back(std::make_unique<MlpClassifier>(c));
  }
  {
    LogisticRegression::Config c;
    c.seed = seed ^ 0x22;
    out.push_back(std::make_unique<LogisticRegression>(c));
  }
  {
    RandomForest::Config c;
    c.seed = seed ^ 0x33;
    out.push_back(std::make_unique<RandomForest>(c));
  }
  {
    LinearSvm::Config c;
    c.seed = seed ^ 0x44;
    out.push_back(std::make_unique<LinearSvm>(c));
  }
  {
    ExplainableBoosting::Config c;
    c.seed = seed ^ 0x55;
    out.push_back(std::make_unique<ExplainableBoosting>(c));
  }
  return out;
}

}  // namespace fcrit::ml
