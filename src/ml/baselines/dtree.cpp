#include "src/ml/baselines/dtree.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace fcrit::ml {

namespace {

double gini(int pos, int total) {
  if (total == 0) return 0.0;
  const double p = static_cast<double>(pos) / total;
  return 2.0 * p * (1.0 - p);
}

}  // namespace

void DecisionTree::fit(const Matrix& x, const std::vector<int>& labels,
                       const std::vector<int>& train_idx) {
  if (train_idx.empty())
    throw std::runtime_error("DecisionTree::fit: empty train set");
  nodes_.clear();
  std::vector<int> idx = train_idx;
  util::Rng rng(config_.seed);
  build(x, labels, idx, 0, static_cast<int>(idx.size()), 0, rng);
}

int DecisionTree::build(const Matrix& x, const std::vector<int>& labels,
                        std::vector<int>& idx, int begin, int end, int depth,
                        util::Rng& rng) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  const int n = end - begin;
  int pos = 0;
  for (int k = begin; k < end; ++k)
    pos += labels[static_cast<std::size_t>(idx[static_cast<std::size_t>(k)])];
  nodes_[static_cast<std::size_t>(node_id)].p1 =
      static_cast<double>(pos) / n;

  const bool pure = (pos == 0 || pos == n);
  if (pure || depth >= config_.max_depth || n < 2 * config_.min_samples_leaf)
    return node_id;

  // Feature candidates.
  std::vector<int> features;
  for (int j = 0; j < x.cols(); ++j) features.push_back(j);
  if (config_.max_features > 0 &&
      config_.max_features < static_cast<int>(features.size())) {
    rng.shuffle(features);
    features.resize(static_cast<std::size_t>(config_.max_features));
  }

  // Best Gini split.
  double best_impurity = gini(pos, n);
  int best_feature = -1;
  float best_threshold = 0.0f;
  std::vector<std::pair<float, int>> column(static_cast<std::size_t>(n));
  for (const int j : features) {
    for (int k = 0; k < n; ++k) {
      const int row = idx[static_cast<std::size_t>(begin + k)];
      column[static_cast<std::size_t>(k)] = {
          x(row, j), labels[static_cast<std::size_t>(row)]};
    }
    std::sort(column.begin(), column.end());
    int left_pos = 0;
    for (int k = 0; k < n - 1; ++k) {
      left_pos += column[static_cast<std::size_t>(k)].second;
      const float v = column[static_cast<std::size_t>(k)].first;
      const float v_next = column[static_cast<std::size_t>(k + 1)].first;
      if (v == v_next) continue;  // can't split between equal values
      const int left_n = k + 1;
      const int right_n = n - left_n;
      if (left_n < config_.min_samples_leaf ||
          right_n < config_.min_samples_leaf)
        continue;
      const double impurity =
          (static_cast<double>(left_n) / n) * gini(left_pos, left_n) +
          (static_cast<double>(right_n) / n) * gini(pos - left_pos, right_n);
      if (impurity + 1e-12 < best_impurity) {
        best_impurity = impurity;
        best_feature = j;
        best_threshold = 0.5f * (v + v_next);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition idx[begin, end) in place.
  const auto mid_it = std::partition(
      idx.begin() + begin, idx.begin() + end, [&](int row) {
        return x(row, best_feature) <= best_threshold;
      });
  const int mid = static_cast<int>(mid_it - idx.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate

  nodes_[static_cast<std::size_t>(node_id)].feature = best_feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best_threshold;
  const int left = build(x, labels, idx, begin, mid, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  const int right = build(x, labels, idx, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

double DecisionTree::predict_one(std::span<const float> row) const {
  if (nodes_.empty()) throw std::runtime_error("DecisionTree: not fitted");
  int cur = 0;
  while (nodes_[static_cast<std::size_t>(cur)].feature >= 0) {
    const Node& nd = nodes_[static_cast<std::size_t>(cur)];
    cur = row[static_cast<std::size_t>(nd.feature)] <= nd.threshold
              ? nd.left
              : nd.right;
  }
  return nodes_[static_cast<std::size_t>(cur)].p1;
}

std::vector<double> DecisionTree::predict_proba(const Matrix& x) const {
  std::vector<double> p(static_cast<std::size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i)
    p[static_cast<std::size_t>(i)] = predict_one(x.row(i));
  return p;
}

int DecisionTree::depth() const {
  std::function<int(int)> walk = [&](int id) -> int {
    const Node& nd = nodes_[static_cast<std::size_t>(id)];
    if (nd.feature < 0) return 0;
    return 1 + std::max(walk(nd.left), walk(nd.right));
  };
  return nodes_.empty() ? 0 : walk(0);
}

}  // namespace fcrit::ml
