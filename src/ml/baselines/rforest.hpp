// Random Forest classifier: bootstrap-bagged CART trees with per-split
// feature subsampling; probability = mean leaf class-1 fraction.
#pragma once

#include <cstdint>
#include <vector>

#include "src/ml/baselines/dtree.hpp"

namespace fcrit::ml {

class RandomForest final : public BaselineClassifier {
 public:
  struct Config {
    int num_trees = 60;
    int max_depth = 10;
    int min_samples_leaf = 2;
    /// <=0: use ceil(sqrt(F)).
    int max_features = 0;
    std::uint64_t seed = 5;
  };

  RandomForest() : RandomForest(Config{}) {}
  explicit RandomForest(Config config) : config_(config) {}

  void fit(const Matrix& x, const std::vector<int>& labels,
           const std::vector<int>& train_idx) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "RFC"; }

  std::size_t num_trees() const { return trees_.size(); }

 private:
  Config config_;
  std::vector<DecisionTree> trees_;
};

}  // namespace fcrit::ml
