#include "src/ml/baselines/ebm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fcrit::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

int ExplainableBoosting::bin_of(int feature, float value) const {
  const auto& edges = bin_edges_[static_cast<std::size_t>(feature)];
  // edges[k] is the upper edge of bin k (except the last bin is open).
  const auto it = std::lower_bound(edges.begin(), edges.end(), value);
  const int bin = static_cast<int>(it - edges.begin());
  const int last =
      static_cast<int>(shape_[static_cast<std::size_t>(feature)].size()) - 1;
  return std::min(bin, last);
}

void ExplainableBoosting::fit(const Matrix& x, const std::vector<int>& labels,
                              const std::vector<int>& train_idx) {
  if (train_idx.empty()) throw std::runtime_error("EBM::fit: empty train set");
  const int f = x.cols();
  const std::size_t n = train_idx.size();

  // Quantile bin edges per feature.
  bin_edges_.assign(static_cast<std::size_t>(f), {});
  shape_.assign(static_cast<std::size_t>(f), {});
  for (int j = 0; j < f; ++j) {
    std::vector<float> vals(n);
    for (std::size_t i = 0; i < n; ++i)
      vals[i] = x(train_idx[i], j);
    std::sort(vals.begin(), vals.end());
    std::vector<float> edges;
    for (int b = 1; b < config_.bins; ++b) {
      const auto q = static_cast<std::size_t>(
          static_cast<double>(b) / config_.bins * static_cast<double>(n - 1));
      const float e = vals[q];
      if (edges.empty() || e > edges.back()) edges.push_back(e);
    }
    bin_edges_[static_cast<std::size_t>(j)] = std::move(edges);
    shape_[static_cast<std::size_t>(j)].assign(
        bin_edges_[static_cast<std::size_t>(j)].size() + 1, 0.0);
  }

  // Intercept: base-rate log odds.
  int pos = 0;
  for (const int i : train_idx) pos += labels[static_cast<std::size_t>(i)];
  const double rate =
      std::clamp(static_cast<double>(pos) / static_cast<double>(n), 1e-6,
                 1.0 - 1e-6);
  intercept_ = std::log(rate / (1.0 - rate));

  // Precompute bins and maintain running scores for the training rows.
  std::vector<std::vector<int>> row_bin(
      static_cast<std::size_t>(f), std::vector<int>(n));
  for (int j = 0; j < f; ++j)
    for (std::size_t i = 0; i < n; ++i)
      row_bin[static_cast<std::size_t>(j)][i] = bin_of(j, x(train_idx[i], j));
  std::vector<double> score(n, intercept_);

  // Cyclic per-feature boosting.
  std::vector<double> grad_sum;
  std::vector<int> grad_cnt;
  for (int round = 0; round < config_.rounds; ++round) {
    for (int j = 0; j < f; ++j) {
      auto& shape = shape_[static_cast<std::size_t>(j)];
      grad_sum.assign(shape.size(), 0.0);
      grad_cnt.assign(shape.size(), 0);
      for (std::size_t i = 0; i < n; ++i) {
        const double p = sigmoid(score[i]);
        const double residual =
            static_cast<double>(
                labels[static_cast<std::size_t>(train_idx[i])]) -
            p;
        const int b = row_bin[static_cast<std::size_t>(j)][i];
        grad_sum[static_cast<std::size_t>(b)] += residual;
        grad_cnt[static_cast<std::size_t>(b)] += 1;
      }
      for (std::size_t b = 0; b < shape.size(); ++b) {
        if (grad_cnt[b] == 0) continue;
        const double delta =
            config_.lr * grad_sum[b] / static_cast<double>(grad_cnt[b]);
        shape[b] += delta;
        // Apply to running scores.
        for (std::size_t i = 0; i < n; ++i)
          if (row_bin[static_cast<std::size_t>(j)][i] ==
              static_cast<int>(b))
            score[i] += delta;
      }
    }
  }

  // Center shapes (cosmetic for interpretability; absorbed by intercept).
  for (auto& shape : shape_) {
    double mean = 0.0;
    for (const double v : shape) mean += v;
    mean /= static_cast<double>(shape.size());
    for (double& v : shape) v -= mean;
    intercept_ += mean;
  }
}

double ExplainableBoosting::shape(int feature, float value) const {
  if (shape_.empty()) throw std::runtime_error("EBM: not fitted");
  return shape_[static_cast<std::size_t>(feature)]
               [static_cast<std::size_t>(bin_of(feature, value))];
}

std::vector<double> ExplainableBoosting::predict_proba(const Matrix& x) const {
  if (shape_.empty()) throw std::runtime_error("EBM: not fitted");
  std::vector<double> p(static_cast<std::size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    double z = intercept_;
    for (int j = 0; j < x.cols(); ++j) z += shape(j, x(i, j));
    p[static_cast<std::size_t>(i)] = sigmoid(z);
  }
  return p;
}

}  // namespace fcrit::ml
