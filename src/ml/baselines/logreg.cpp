#include "src/ml/baselines/logreg.hpp"

#include <cmath>
#include <stdexcept>

namespace fcrit::ml {

namespace {
double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }
}  // namespace

void LogisticRegression::fit(const Matrix& x, const std::vector<int>& labels,
                             const std::vector<int>& train_idx) {
  if (train_idx.empty()) throw std::runtime_error("LoR::fit: empty train set");
  const int f = x.cols();
  w_.assign(static_cast<std::size_t>(f) + 1, 0.0);

  // Adam state.
  std::vector<double> m(w_.size(), 0.0), v(w_.size(), 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  std::vector<double> grad(w_.size());

  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (const int i : train_idx) {
      const auto row = x.row(i);
      double z = w_[static_cast<std::size_t>(f)];
      for (int j = 0; j < f; ++j) z += w_[static_cast<std::size_t>(j)] * row[j];
      const double err =
          sigmoid(z) - static_cast<double>(labels[static_cast<std::size_t>(i)]);
      for (int j = 0; j < f; ++j)
        grad[static_cast<std::size_t>(j)] += err * row[j];
      grad[static_cast<std::size_t>(f)] += err;
    }
    const double inv = 1.0 / static_cast<double>(train_idx.size());
    for (std::size_t j = 0; j < w_.size(); ++j) {
      double g = grad[j] * inv;
      if (j + 1 < w_.size()) g += config_.l2 * w_[j];  // no decay on bias
      m[j] = b1 * m[j] + (1 - b1) * g;
      v[j] = b2 * v[j] + (1 - b2) * g * g;
      const double mhat = m[j] / (1 - std::pow(b1, epoch));
      const double vhat = v[j] / (1 - std::pow(b2, epoch));
      w_[j] -= config_.lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

std::vector<double> LogisticRegression::predict_proba(const Matrix& x) const {
  if (w_.empty()) throw std::runtime_error("LoR::predict: not fitted");
  const int f = x.cols();
  if (static_cast<std::size_t>(f) + 1 != w_.size())
    throw std::runtime_error("LoR::predict: feature mismatch");
  std::vector<double> p(static_cast<std::size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    double z = w_[static_cast<std::size_t>(f)];
    for (int j = 0; j < f; ++j) z += w_[static_cast<std::size_t>(j)] * row[j];
    p[static_cast<std::size_t>(i)] = sigmoid(z);
  }
  return p;
}

}  // namespace fcrit::ml
