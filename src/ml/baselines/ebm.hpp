// Explainable Boosting Machine: a generalized additive model fit by cyclic
// per-feature gradient boosting with histogram (quantile-bin) shape
// functions under logistic loss. Glass-box like the reference
// implementation; interactions are omitted (GA2M pairs are out of scope for
// the paper's comparison).
#pragma once

#include <cstdint>
#include <vector>

#include "src/ml/baselines/baseline.hpp"

namespace fcrit::ml {

class ExplainableBoosting final : public BaselineClassifier {
 public:
  struct Config {
    int bins = 16;       // quantile bins per feature
    int rounds = 400;    // boosting cycles over all features
    double lr = 0.05;    // shrinkage per update
    std::uint64_t seed = 6;
  };

  ExplainableBoosting() : ExplainableBoosting(Config{}) {}
  explicit ExplainableBoosting(Config config) : config_(config) {}

  void fit(const Matrix& x, const std::vector<int>& labels,
           const std::vector<int>& train_idx) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "EBM"; }

  /// Additive score contribution of feature j at value v (the learned shape
  /// function), for interpretability reports.
  double shape(int feature, float value) const;

 private:
  int bin_of(int feature, float value) const;

  Config config_;
  double intercept_ = 0.0;
  std::vector<std::vector<float>> bin_edges_;   // per feature, ascending
  std::vector<std::vector<double>> shape_;      // per feature, per bin
};

}  // namespace fcrit::ml
