#include "src/ml/baselines/svm.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace fcrit::ml {

void LinearSvm::fit(const Matrix& x, const std::vector<int>& labels,
                    const std::vector<int>& train_idx) {
  if (train_idx.empty()) throw std::runtime_error("SVM::fit: empty train set");
  const int f = x.cols();
  w_.assign(static_cast<std::size_t>(f) + 1, 0.0);
  util::Rng rng(config_.seed);

  // Pegasos: step size 1/(lambda * t), sampling one example per iteration.
  const std::size_t n = train_idx.size();
  const long total = static_cast<long>(config_.epochs) * static_cast<long>(n);
  for (long t = 1; t <= total; ++t) {
    const int i = train_idx[rng.next_below(n)];
    const auto row = x.row(i);
    const double y = labels[static_cast<std::size_t>(i)] == 1 ? 1.0 : -1.0;
    double margin = w_[static_cast<std::size_t>(f)];
    for (int j = 0; j < f; ++j)
      margin += w_[static_cast<std::size_t>(j)] * row[j];
    const double eta = 1.0 / (config_.lambda * static_cast<double>(t));
    // Regularization shrink (weights only, not bias).
    for (int j = 0; j < f; ++j)
      w_[static_cast<std::size_t>(j)] *= (1.0 - eta * config_.lambda);
    if (y * margin < 1.0) {
      for (int j = 0; j < f; ++j)
        w_[static_cast<std::size_t>(j)] += eta * y * row[j];
      w_[static_cast<std::size_t>(f)] += eta * y;
    }
  }

  // Platt scaling: fit sigmoid(a*margin + b) to training labels by
  // Newton-free gradient descent (simple and adequate at this scale).
  const auto margins = decision_function(x);
  platt_a_ = 1.0;
  platt_b_ = 0.0;
  for (int epoch = 0; epoch < 300; ++epoch) {
    double ga = 0.0, gb = 0.0;
    for (const int i : train_idx) {
      const double m = margins[static_cast<std::size_t>(i)];
      const double p = 1.0 / (1.0 + std::exp(-(platt_a_ * m + platt_b_)));
      const double err =
          p - static_cast<double>(labels[static_cast<std::size_t>(i)]);
      ga += err * m;
      gb += err;
    }
    const double inv = 1.0 / static_cast<double>(train_idx.size());
    platt_a_ -= 0.1 * ga * inv;
    platt_b_ -= 0.1 * gb * inv;
  }
}

std::vector<double> LinearSvm::decision_function(const Matrix& x) const {
  if (w_.empty()) throw std::runtime_error("SVM: not fitted");
  const int f = x.cols();
  std::vector<double> m(static_cast<std::size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    double z = w_[static_cast<std::size_t>(f)];
    for (int j = 0; j < f; ++j) z += w_[static_cast<std::size_t>(j)] * row[j];
    m[static_cast<std::size_t>(i)] = z;
  }
  return m;
}

std::vector<double> LinearSvm::predict_proba(const Matrix& x) const {
  const auto margins = decision_function(x);
  std::vector<double> p(margins.size());
  for (std::size_t i = 0; i < margins.size(); ++i)
    p[i] = 1.0 / (1.0 + std::exp(-(platt_a_ * margins[i] + platt_b_)));
  return p;
}

}  // namespace fcrit::ml
