// Binary logistic regression trained full-batch with Adam.
#pragma once

#include <cstdint>

#include "src/ml/baselines/baseline.hpp"

namespace fcrit::ml {

class LogisticRegression final : public BaselineClassifier {
 public:
  struct Config {
    int epochs = 500;
    double lr = 0.05;
    double l2 = 1e-4;
    std::uint64_t seed = 1;
  };

  LogisticRegression() : LogisticRegression(Config{}) {}
  explicit LogisticRegression(Config config) : config_(config) {}

  void fit(const Matrix& x, const std::vector<int>& labels,
           const std::vector<int>& train_idx) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "LoR"; }

  /// Learned weights (for tests): w_[j], bias last.
  const std::vector<double>& weights() const { return w_; }

 private:
  Config config_;
  std::vector<double> w_;  // size F+1, bias at the end
};

}  // namespace fcrit::ml
