#include "src/ml/baselines/mlp.hpp"

#include <cmath>
#include <stdexcept>

#include "src/ml/optimizer.hpp"

namespace fcrit::ml {

Matrix MlpClassifier::forward(const Matrix& x, bool training) const {
  Matrix h = x;
  for (const auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

void MlpClassifier::fit(const Matrix& x, const std::vector<int>& labels,
                        const std::vector<int>& train_idx) {
  if (train_idx.empty()) throw std::runtime_error("MLP::fit: empty train set");
  rng_ = util::Rng(config_.seed);
  layers_.clear();
  int width = x.cols();
  for (const int h : config_.hidden) {
    layers_.push_back(std::make_unique<Linear>(width, h, rng_));
    layers_.push_back(std::make_unique<Relu>());
    width = h;
  }
  layers_.push_back(std::make_unique<Linear>(width, 2, rng_));
  layers_.push_back(std::make_unique<LogSoftmax>());

  std::vector<Param> params;
  for (const auto& layer : layers_) layer->collect_params(params);
  Adam opt(params, config_.lr, config_.weight_decay);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    const Matrix logp = forward(x, /*training=*/true);
    Matrix grad;
    masked_nll(logp, labels, train_idx, grad);
    opt.zero_grad();
    Matrix g = grad;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
      g = (*it)->backward(g);
    opt.step();
  }
}

std::vector<double> MlpClassifier::predict_proba(const Matrix& x) const {
  if (layers_.empty()) throw std::runtime_error("MLP::predict: not fitted");
  const Matrix logp = forward(x, /*training=*/false);
  std::vector<double> p(static_cast<std::size_t>(x.rows()));
  for (int i = 0; i < x.rows(); ++i)
    p[static_cast<std::size_t>(i)] = std::exp(static_cast<double>(logp(i, 1)));
  return p;
}

}  // namespace fcrit::ml
