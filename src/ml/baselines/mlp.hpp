// Multi-layer perceptron baseline: Linear -> ReLU -> Linear -> ReLU ->
// Linear(2) -> LogSoftmax, trained full-batch with Adam on the training
// rows. Reuses the layer stack of the GCN (without graph propagation).
#pragma once

#include <cstdint>
#include <memory>

#include "src/ml/baselines/baseline.hpp"
#include "src/ml/layers.hpp"

namespace fcrit::ml {

class MlpClassifier final : public BaselineClassifier {
 public:
  struct Config {
    std::vector<int> hidden = {32, 16};
    int epochs = 400;
    double lr = 0.01;
    double weight_decay = 1e-4;
    std::uint64_t seed = 2;
  };

  MlpClassifier() : MlpClassifier(Config{}) {}
  explicit MlpClassifier(Config config) : config_(std::move(config)) {}

  void fit(const Matrix& x, const std::vector<int>& labels,
           const std::vector<int>& train_idx) override;
  std::vector<double> predict_proba(const Matrix& x) const override;
  std::string name() const override { return "MLP"; }

 private:
  Matrix forward(const Matrix& x, bool training) const;

  Config config_;
  mutable util::Rng rng_{2};
  mutable std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fcrit::ml
