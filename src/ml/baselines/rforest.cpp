#include "src/ml/baselines/rforest.hpp"

#include <cmath>
#include <stdexcept>

namespace fcrit::ml {

void RandomForest::fit(const Matrix& x, const std::vector<int>& labels,
                       const std::vector<int>& train_idx) {
  if (train_idx.empty())
    throw std::runtime_error("RandomForest::fit: empty train set");
  trees_.clear();
  util::Rng rng(config_.seed);
  const int mf = config_.max_features > 0
                     ? config_.max_features
                     : static_cast<int>(
                           std::ceil(std::sqrt(static_cast<double>(x.cols()))));

  for (int t = 0; t < config_.num_trees; ++t) {
    // Bootstrap sample of the training rows.
    std::vector<int> bag(train_idx.size());
    for (std::size_t i = 0; i < bag.size(); ++i)
      bag[i] = train_idx[rng.next_below(train_idx.size())];

    DecisionTree::Config tc;
    tc.max_depth = config_.max_depth;
    tc.min_samples_leaf = config_.min_samples_leaf;
    tc.max_features = mf;
    tc.seed = rng.next();
    DecisionTree tree(tc);
    tree.fit(x, labels, bag);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::predict_proba(const Matrix& x) const {
  if (trees_.empty()) throw std::runtime_error("RandomForest: not fitted");
  std::vector<double> p(static_cast<std::size_t>(x.rows()), 0.0);
  for (const DecisionTree& tree : trees_) {
    for (int i = 0; i < x.rows(); ++i)
      p[static_cast<std::size_t>(i)] += tree.predict_one(x.row(i));
  }
  for (double& v : p) v /= static_cast<double>(trees_.size());
  return p;
}

}  // namespace fcrit::ml
