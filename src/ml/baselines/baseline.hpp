// Common interface of the §4.2.1 comparison classifiers (Fig. 3 / Fig. 4):
// MLP, Logistic Regression (LoR), Random Forest (RFC), linear SVM, and
// Explainable Boosting Machine (EBM). All operate on the plain node-feature
// matrix — unlike the GCN they see no graph structure, which is exactly the
// gap the paper quantifies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ml/matrix.hpp"

namespace fcrit::ml {

class BaselineClassifier {
 public:
  virtual ~BaselineClassifier() = default;

  /// Train on the rows listed in `train_idx`; `labels` is indexed by row.
  virtual void fit(const Matrix& x, const std::vector<int>& labels,
                   const std::vector<int>& train_idx) = 0;

  /// P(class 1) per row of `x`.
  virtual std::vector<double> predict_proba(const Matrix& x) const = 0;

  virtual std::string name() const = 0;
};

/// Threshold probabilities into class labels.
std::vector<int> labels_from_proba(const std::vector<double>& proba,
                                   double threshold = 0.5);

/// All five baselines in the paper's comparison order:
/// MLP, LoR, RFC, SVM, EBM.
std::vector<std::unique_ptr<BaselineClassifier>> make_all_baselines(
    std::uint64_t seed);

}  // namespace fcrit::ml
