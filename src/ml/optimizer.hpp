// Adam optimizer (Kingma & Ba) with decoupled L2 weight decay.
#pragma once

#include <cmath>
#include <vector>

#include "src/ml/layers.hpp"

namespace fcrit::ml {

class Adam {
 public:
  explicit Adam(std::vector<Param> params, double lr = 1e-2,
                double weight_decay = 0.0, double beta1 = 0.9,
                double beta2 = 0.999, double eps = 1e-8)
      : params_(std::move(params)),
        lr_(lr),
        weight_decay_(weight_decay),
        beta1_(beta1),
        beta2_(beta2),
        eps_(eps) {
    for (const Param& p : params_) {
      m_.emplace_back(p.value->rows(), p.value->cols());
      v_.emplace_back(p.value->rows(), p.value->cols());
    }
  }

  void zero_grad() {
    for (const Param& p : params_) p.grad->set_zero();
  }

  void step() {
    ++t_;
    const double bc1 = 1.0 - std::pow(beta1_, t_);
    const double bc2 = 1.0 - std::pow(beta2_, t_);
    for (std::size_t k = 0; k < params_.size(); ++k) {
      Matrix& w = *params_[k].value;
      Matrix& g = *params_[k].grad;
      Matrix& m = m_[k];
      Matrix& v = v_[k];
      float* wd = w.data();
      float* gd = g.data();
      float* md = m.data();
      float* vd = v.data();
      const std::size_t n = w.size();
      for (std::size_t i = 0; i < n; ++i) {
        double grad = gd[i] + weight_decay_ * wd[i];
        md[i] = static_cast<float>(beta1_ * md[i] + (1.0 - beta1_) * grad);
        vd[i] = static_cast<float>(beta2_ * vd[i] +
                                   (1.0 - beta2_) * grad * grad);
        const double mhat = md[i] / bc1;
        const double vhat = vd[i] / bc2;
        wd[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
      }
    }
  }

  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 private:
  std::vector<Param> params_;
  std::vector<Matrix> m_, v_;
  double lr_, weight_decay_, beta1_, beta2_, eps_;
  int t_ = 0;
};

}  // namespace fcrit::ml
