// Full-graph training loops for the GCN classifier (§3.3.3) and regressor
// (§3.4): Adam, masked losses over the 80/20 node split, early stopping on
// validation accuracy / MSE with best-parameter restore.
#pragma once

#include <cstdint>
#include <vector>

#include "src/ml/gcn.hpp"
#include "src/ml/sparse.hpp"

namespace fcrit::ml {

struct TrainConfig {
  int epochs = 300;
  double lr = 0.01;
  double weight_decay = 5e-4;
  int patience = 60;   // early-stopping patience in epochs (<=0: off)
  bool verbose = false;
  int log_every = 25;
};

struct TrainHistory {
  std::vector<double> train_loss;   // per epoch
  std::vector<double> val_metric;   // accuracy (classifier) / -MSE (regressor)
  int best_epoch = -1;
  double best_val_metric = 0.0;
};

/// Train a classifier on `labels` (one class per node). The model's
/// parameters end at the best-validation epoch.
TrainHistory train_classifier(GcnModel& model, const SparseMatrix& adj,
                              const Matrix& x, const std::vector<int>& labels,
                              const std::vector<int>& train_idx,
                              const std::vector<int>& val_idx,
                              const TrainConfig& config);

/// Train a regressor on continuous `targets` in [0, 1].
TrainHistory train_regressor(GcnModel& model, const SparseMatrix& adj,
                             const Matrix& x,
                             const std::vector<double>& targets,
                             const std::vector<int>& train_idx,
                             const std::vector<int>& val_idx,
                             const TrainConfig& config);

}  // namespace fcrit::ml
