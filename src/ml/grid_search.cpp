#include "src/ml/grid_search.hpp"

#include "src/util/parallel.hpp"
#include "src/util/text.hpp"

namespace fcrit::ml {

std::string GridTrial::to_string() const {
  std::string s = "hidden=[";
  for (std::size_t i = 0; i < model_config.hidden.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(model_config.hidden[i]);
  }
  s += "] dropout=" + util::format_double(model_config.dropout, 2);
  s += " lr=" + util::format_double(train_config.lr, 4);
  s += " val_acc=" + util::format_double(val_accuracy, 4);
  return s;
}

GridSearchResult grid_search(const SparseMatrix& adj, const Matrix& x,
                             const std::vector<int>& labels,
                             const std::vector<int>& train_idx,
                             const std::vector<int>& val_idx,
                             const GridSearchSpace& space,
                             const TrainConfig& base_config) {
  GridSearchResult result;
  result.best.val_accuracy = -1.0;

  // Flatten the grid so the trials — each an independent training run —
  // shard across the pool at the config level (ISSUE: parallelize here, not
  // inside the tiny per-trial models).
  struct TrialSpec {
    GcnConfig mc;
    TrainConfig tc;
  };
  std::vector<TrialSpec> specs;
  for (const auto& hidden : space.hidden_options) {
    for (const double dropout : space.dropout_options) {
      for (const double lr : space.lr_options) {
        GcnConfig mc = GcnConfig::classifier();
        mc.hidden = hidden;
        mc.dropout = dropout;
        // Keep the dropout position inside the stack.
        mc.dropout_after = hidden.size() >= 2 ? 1 : 0;
        TrainConfig tc = base_config;
        tc.lr = lr;
        tc.verbose = false;
        specs.push_back({std::move(mc), std::move(tc)});
      }
    }
  }

  result.trials.resize(specs.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(specs.size()), 1,
      [&](std::int64_t t0, std::int64_t t1) {
        for (std::int64_t t = t0; t < t1; ++t) {
          const TrialSpec& spec = specs[static_cast<std::size_t>(t)];
          GcnModel model(x.cols(), spec.mc);
          const TrainHistory h = train_classifier(model, adj, x, labels,
                                                  train_idx, val_idx, spec.tc);
          result.trials[static_cast<std::size_t>(t)] =
              GridTrial{spec.mc, spec.tc, h.best_val_metric};
        }
      });

  // In-order scan replicates the serial loop's first-strictly-greater
  // tie-break, so the winner is identical no matter the thread count.
  for (const GridTrial& trial : result.trials)
    if (trial.val_accuracy > result.best.val_accuracy) result.best = trial;
  return result;
}

}  // namespace fcrit::ml
