#include "src/ml/grid_search.hpp"

#include "src/util/text.hpp"

namespace fcrit::ml {

std::string GridTrial::to_string() const {
  std::string s = "hidden=[";
  for (std::size_t i = 0; i < model_config.hidden.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(model_config.hidden[i]);
  }
  s += "] dropout=" + util::format_double(model_config.dropout, 2);
  s += " lr=" + util::format_double(train_config.lr, 4);
  s += " val_acc=" + util::format_double(val_accuracy, 4);
  return s;
}

GridSearchResult grid_search(const SparseMatrix& adj, const Matrix& x,
                             const std::vector<int>& labels,
                             const std::vector<int>& train_idx,
                             const std::vector<int>& val_idx,
                             const GridSearchSpace& space,
                             const TrainConfig& base_config) {
  GridSearchResult result;
  result.best.val_accuracy = -1.0;

  for (const auto& hidden : space.hidden_options) {
    for (const double dropout : space.dropout_options) {
      for (const double lr : space.lr_options) {
        GcnConfig mc = GcnConfig::classifier();
        mc.hidden = hidden;
        mc.dropout = dropout;
        // Keep the dropout position inside the stack.
        mc.dropout_after =
            hidden.size() >= 2 ? 1 : 0;
        TrainConfig tc = base_config;
        tc.lr = lr;
        tc.verbose = false;

        GcnModel model(x.cols(), mc);
        const TrainHistory h = train_classifier(model, adj, x, labels,
                                                train_idx, val_idx, tc);
        GridTrial trial{mc, tc, h.best_val_metric};
        if (trial.val_accuracy > result.best.val_accuracy)
          result.best = trial;
        result.trials.push_back(std::move(trial));
      }
    }
  }
  return result;
}

}  // namespace fcrit::ml
