#include "src/ml/crossval.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/ml/metrics.hpp"
#include "src/util/parallel.hpp"
#include "src/util/rng.hpp"
#include "src/util/text.hpp"

namespace fcrit::ml {

std::string CrossValResult::to_string() const {
  std::string out = "cv accuracy " +
                    util::format_double(100.0 * mean_accuracy, 2) + "% +/- " +
                    util::format_double(100.0 * stddev_accuracy, 2) +
                    " (auc " + util::format_double(mean_auc, 3) + "; folds:";
  for (const double a : fold_accuracy)
    out += " " + util::format_double(100.0 * a, 1);
  out += ")";
  return out;
}

CrossValResult cross_validate_gcn(const SparseMatrix& adj, const Matrix& x,
                                  const std::vector<int>& labels,
                                  const std::vector<int>& candidates,
                                  int num_folds, const GcnConfig& model_config,
                                  const TrainConfig& train_config,
                                  std::uint64_t seed) {
  if (num_folds < 2)
    throw std::runtime_error("cross_validate_gcn: need >= 2 folds");
  if (candidates.size() < static_cast<std::size_t>(2 * num_folds))
    throw std::runtime_error("cross_validate_gcn: too few candidates");

  // Stratified fold assignment: shuffle within each class, deal round-robin.
  util::Rng rng(seed);
  std::vector<int> fold_of_candidate(candidates.size());
  std::vector<std::size_t> by_class[2];
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const int y = labels[static_cast<std::size_t>(candidates[i])];
    if (y != 0 && y != 1)
      throw std::runtime_error("cross_validate_gcn: labels must be binary");
    by_class[y].push_back(i);
  }
  for (auto& bucket : by_class) {
    rng.shuffle(bucket);
    for (std::size_t k = 0; k < bucket.size(); ++k)
      fold_of_candidate[bucket[k]] = static_cast<int>(k) % num_folds;
  }

  // Folds are fully independent (each trains its own model on its own seed),
  // so they shard across the pool. Results land in preallocated slots by
  // fold index, matching the serial loop's ordering exactly; kernels invoked
  // inside a worker run inline (nested regions degrade to serial), so each
  // fold's arithmetic is identical to the serial path.
  CrossValResult result;
  result.fold_accuracy.assign(static_cast<std::size_t>(num_folds), 0.0);
  result.fold_auc.assign(static_cast<std::size_t>(num_folds), 0.0);
  util::parallel_for(0, num_folds, 1, [&](std::int64_t f0, std::int64_t f1) {
    for (int fold = static_cast<int>(f0); fold < static_cast<int>(f1);
         ++fold) {
      std::vector<int> train, val;
      for (std::size_t i = 0; i < candidates.size(); ++i)
        (fold_of_candidate[i] == fold ? val : train).push_back(candidates[i]);
      if (val.empty() || train.empty())
        throw std::runtime_error("cross_validate_gcn: empty fold");

      GcnConfig mc = model_config;
      mc.seed = seed ^ (static_cast<std::uint64_t>(fold) << 17);
      GcnModel model(x.cols(), mc);
      train_classifier(model, adj, x, labels, train, val, train_config);
      const Matrix out = model.forward(x, false);
      result.fold_accuracy[static_cast<std::size_t>(fold)] =
          accuracy(predict_labels(out), labels, val);
      bool has_pos = false, has_neg = false;
      for (const int i : val)
        (labels[static_cast<std::size_t>(i)] ? has_pos : has_neg) = true;
      result.fold_auc[static_cast<std::size_t>(fold)] =
          has_pos && has_neg ? roc_auc(class1_probability(out), labels, val)
                             : 0.5;
    }
  });

  const double n = static_cast<double>(num_folds);
  for (const double a : result.fold_accuracy) result.mean_accuracy += a / n;
  for (const double a : result.fold_auc) result.mean_auc += a / n;
  double var = 0.0;
  for (const double a : result.fold_accuracy)
    var += (a - result.mean_accuracy) * (a - result.mean_accuracy) / n;
  result.stddev_accuracy = std::sqrt(var);
  return result;
}

}  // namespace fcrit::ml
