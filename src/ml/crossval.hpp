// Stratified k-fold cross-validation for the GCN classifier: a more robust
// accuracy estimate than the single 80/20 split of §4.1, reported by the
// robustness bench alongside the headline numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/ml/trainer.hpp"

namespace fcrit::ml {

struct CrossValResult {
  std::vector<double> fold_accuracy;
  std::vector<double> fold_auc;
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
  double mean_auc = 0.0;

  std::string to_string() const;
};

/// k-fold CV over `candidates` (node row indices with labels). Each fold
/// trains a fresh model from `model_config` on the other k-1 folds. Folds
/// are stratified by label and deterministic in `seed`.
CrossValResult cross_validate_gcn(const SparseMatrix& adj, const Matrix& x,
                                  const std::vector<int>& labels,
                                  const std::vector<int>& candidates,
                                  int num_folds, const GcnConfig& model_config,
                                  const TrainConfig& train_config,
                                  std::uint64_t seed);

}  // namespace fcrit::ml
