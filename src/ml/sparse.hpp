// CSR sparse matrix used for the (normalized) graph adjacency.
//
// Supports the three kernels GCN training and GNNExplainer need:
//   spmm       Y = S  · X        (message passing forward)
//   spmm_t     Y = Sᵀ · X        (backward through the propagation;
//                                 equals spmm for symmetric S)
//   edge_grad  dL/dS[k] = <Gout.row(r_k), X.row(c_k)>  per stored entry
// Entry order is stable (sorted by row, then column), so per-edge masks
// and gradients can be carried in plain vectors aligned with values().
// All three kernels shard their OUTPUT rows across the shared thread pool
// (src/util/parallel.hpp) with per-row accumulation order unchanged, so
// results are bitwise-identical to the serial path for any thread count.
#pragma once

#include <cstdint>
#include <tuple>
#include <vector>

#include "src/ml/matrix.hpp"

namespace fcrit::ml {

struct Coo {
  int row;
  int col;
  float value;
};

class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Build from coordinate triples; duplicate (row, col) entries sum.
  static SparseMatrix from_coo(int rows, int cols, std::vector<Coo> entries);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t nnz() const { return col_.size(); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_index() const { return col_; }
  const std::vector<float>& values() const { return val_; }
  std::vector<float>& mutable_values() { return val_; }

  /// Row index of stored entry k (O(log rows)).
  int entry_row(std::size_t k) const;

  /// Y = S · X.
  Matrix spmm(const Matrix& x) const;

  /// Y = Sᵀ · X.
  Matrix spmm_t(const Matrix& x) const;

  /// Per-entry gradient of L w.r.t. the stored values, where Y = S · X and
  /// g_out = dL/dY: out[k] += <g_out.row(row_k), x.row(col_k)>.
  void accumulate_edge_grad(const Matrix& g_out, const Matrix& x,
                            std::vector<float>& out) const;

  /// Copy with values replaced (same sparsity pattern).
  SparseMatrix with_values(std::vector<float> values) const;

  bool is_symmetric(float tol = 1e-6f) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_;
  std::vector<int> col_;
  std::vector<float> val_;
};

}  // namespace fcrit::ml
