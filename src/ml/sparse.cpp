#include "src/ml/sparse.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "src/ml/kernel_stats.hpp"
#include "src/util/parallel.hpp"

namespace fcrit::ml {

SparseMatrix SparseMatrix::from_coo(int rows, int cols,
                                    std::vector<Coo> entries) {
  for (const Coo& e : entries) {
    if (e.row < 0 || e.row >= rows || e.col < 0 || e.col >= cols)
      throw std::runtime_error("SparseMatrix::from_coo: index out of range");
  }
  std::sort(entries.begin(), entries.end(), [](const Coo& a, const Coo& b) {
    return std::tie(a.row, a.col) < std::tie(b.row, b.col);
  });

  SparseMatrix s;
  s.rows_ = rows;
  s.cols_ = cols;
  s.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (std::size_t i = 0; i < entries.size();) {
    std::size_t j = i;
    float sum = 0.0f;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    s.col_.push_back(entries[i].col);
    s.val_.push_back(sum);
    ++s.row_ptr_[static_cast<std::size_t>(entries[i].row) + 1];
    i = j;
  }
  for (std::size_t r = 1; r < s.row_ptr_.size(); ++r)
    s.row_ptr_[r] += s.row_ptr_[r - 1];
  return s;
}

int SparseMatrix::entry_row(std::size_t k) const {
  assert(k < col_.size());
  const auto it = std::upper_bound(row_ptr_.begin(), row_ptr_.end(),
                                   static_cast<int>(k));
  return static_cast<int>(it - row_ptr_.begin()) - 1;
}

Matrix SparseMatrix::spmm(const Matrix& x) const {
  assert(x.rows() == cols_);
  static obs::Histogram& hist = obs::registry().histogram("ml.kernel.spmm_ms");
  detail::KernelScope scope("spmm", hist);
  Matrix y(rows_, x.cols());
  // Output-row sharding: row r's gather walks its CSR entries in stored
  // order regardless of which chunk owns r — bitwise-identical to serial.
  const std::int64_t per_row =
      rows_ == 0 ? 1
                 : (static_cast<std::int64_t>(nnz()) * x.cols()) / rows_ + 1;
  util::parallel_for(0, rows_, detail::row_grain(per_row),
                     [&](std::int64_t r0, std::int64_t r1) {
    for (int r = static_cast<int>(r0); r < static_cast<int>(r1); ++r) {
      auto yrow = y.row(r);
      for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const float v = val_[static_cast<std::size_t>(k)];
        if (v == 0.0f) continue;
        const auto xrow = x.row(col_[static_cast<std::size_t>(k)]);
        for (int j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
      }
    }
  });
  return y;
}

Matrix SparseMatrix::spmm_t(const Matrix& x) const {
  assert(x.rows() == rows_);
  static obs::Histogram& hist =
      obs::registry().histogram("ml.kernel.spmm_t_ms");
  detail::KernelScope scope("spmm_t", hist);
  Matrix y(cols_, x.cols());
  // Sᵀ scatters into y.row(col): sharding by OUTPUT row means every chunk
  // re-scans the whole entry stream but only accumulates the columns it
  // owns, so for a fixed output row contributions still arrive in the
  // serial (r, k)-ascending order — bitwise-identical, no scatter races.
  const std::int64_t per_row =
      cols_ == 0 ? 1
                 : (static_cast<std::int64_t>(nnz()) * x.cols()) / cols_ + 1;
  util::parallel_for(0, cols_, detail::row_grain(per_row),
                     [&](std::int64_t c0, std::int64_t c1) {
    for (int r = 0; r < rows_; ++r) {
      const auto xrow = x.row(r);
      for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const int c = col_[static_cast<std::size_t>(k)];
        if (c < c0 || c >= c1) continue;
        const float v = val_[static_cast<std::size_t>(k)];
        if (v == 0.0f) continue;
        auto yrow = y.row(c);
        for (int j = 0; j < x.cols(); ++j) yrow[j] += v * xrow[j];
      }
    }
  });
  return y;
}

void SparseMatrix::accumulate_edge_grad(const Matrix& g_out, const Matrix& x,
                                        std::vector<float>& out) const {
  assert(g_out.rows() == rows_ && x.rows() == cols_);
  assert(g_out.cols() == x.cols());
  out.resize(val_.size(), 0.0f);
  // Each stored entry k lives in exactly one source row, so row sharding
  // gives every out[k] a single writer and an unchanged dot-product order.
  const std::int64_t per_row =
      rows_ == 0 ? 1
                 : (static_cast<std::int64_t>(nnz()) * x.cols()) / rows_ + 1;
  util::parallel_for(0, rows_, detail::row_grain(per_row),
                     [&](std::int64_t r0, std::int64_t r1) {
    for (int r = static_cast<int>(r0); r < static_cast<int>(r1); ++r) {
      const auto grow = g_out.row(r);
      for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const auto xrow = x.row(col_[static_cast<std::size_t>(k)]);
        float s = 0.0f;
        for (int j = 0; j < x.cols(); ++j) s += grow[j] * xrow[j];
        out[static_cast<std::size_t>(k)] += s;
      }
    }
  });
}

SparseMatrix SparseMatrix::with_values(std::vector<float> values) const {
  if (values.size() != val_.size())
    throw std::runtime_error("SparseMatrix::with_values: size mismatch");
  SparseMatrix s = *this;
  s.val_ = std::move(values);
  return s;
}

bool SparseMatrix::is_symmetric(float tol) const {
  if (rows_ != cols_) return false;
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const int c = col_[static_cast<std::size_t>(k)];
      const float v = val_[static_cast<std::size_t>(k)];
      // Find (c, r).
      bool found = false;
      for (int k2 = row_ptr_[c]; k2 < row_ptr_[c + 1]; ++k2) {
        if (col_[static_cast<std::size_t>(k2)] == r) {
          if (std::fabs(val_[static_cast<std::size_t>(k2)] - v) > tol)
            return false;
          found = true;
          break;
        }
      }
      if (!found && std::fabs(v) > tol) return false;
    }
  }
  return true;
}

}  // namespace fcrit::ml
