// Hyperparameter grid search (§3.3.2): sweep layer stacks, dropout rates
// and learning rates; select the configuration with the best validation
// accuracy.
#pragma once

#include <string>
#include <vector>

#include "src/ml/trainer.hpp"

namespace fcrit::ml {

struct GridSearchSpace {
  std::vector<std::vector<int>> hidden_options = {
      {16, 32}, {16, 32, 64}, {32, 64}};
  std::vector<double> dropout_options = {0.0, 0.3, 0.5};
  std::vector<double> lr_options = {0.01, 0.003};
};

struct GridTrial {
  GcnConfig model_config;
  TrainConfig train_config;
  double val_accuracy = 0.0;
  std::string to_string() const;
};

struct GridSearchResult {
  GridTrial best;
  std::vector<GridTrial> trials;
};

GridSearchResult grid_search(const SparseMatrix& adj, const Matrix& x,
                             const std::vector<int>& labels,
                             const std::vector<int>& train_idx,
                             const std::vector<int>& val_idx,
                             const GridSearchSpace& space,
                             const TrainConfig& base_config);

}  // namespace fcrit::ml
