#include "src/ml/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "src/util/text.hpp"

namespace fcrit::ml {

double Confusion::accuracy() const {
  const int t = total();
  return t == 0 ? 0.0 : static_cast<double>(tp + tn) / t;
}

double Confusion::precision() const {
  return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
}

double Confusion::recall() const {
  return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
}

double Confusion::fpr() const {
  return (fp + tn) == 0 ? 0.0 : static_cast<double>(fp) / (fp + tn);
}

double Confusion::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string Confusion::to_string() const {
  return "tp=" + std::to_string(tp) + " fp=" + std::to_string(fp) +
         " tn=" + std::to_string(tn) + " fn=" + std::to_string(fn) +
         " acc=" + util::format_double(accuracy(), 4);
}

Confusion confusion(const std::vector<int>& predicted,
                    const std::vector<int>& labels,
                    const std::vector<int>& subset) {
  Confusion c;
  for (const int i : subset) {
    const int p = predicted[static_cast<std::size_t>(i)];
    const int y = labels[static_cast<std::size_t>(i)];
    if (p == 1 && y == 1)
      ++c.tp;
    else if (p == 1 && y == 0)
      ++c.fp;
    else if (p == 0 && y == 0)
      ++c.tn;
    else
      ++c.fn;
  }
  return c;
}

double accuracy(const std::vector<int>& predicted,
                const std::vector<int>& labels,
                const std::vector<int>& subset) {
  return confusion(predicted, labels, subset).accuracy();
}

std::vector<RocPoint> roc_curve(const std::vector<double>& scores,
                                const std::vector<int>& labels,
                                const std::vector<int>& subset) {
  if (subset.empty()) throw std::runtime_error("roc_curve: empty subset");
  std::vector<int> order = subset;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return scores[static_cast<std::size_t>(a)] >
           scores[static_cast<std::size_t>(b)];
  });
  int positives = 0, negatives = 0;
  for (const int i : subset)
    labels[static_cast<std::size_t>(i)] == 1 ? ++positives : ++negatives;
  if (positives == 0 || negatives == 0)
    throw std::runtime_error("roc_curve: need both classes in subset");

  std::vector<RocPoint> curve;
  curve.push_back({0.0, 0.0, std::numeric_limits<double>::infinity()});
  int tp = 0, fp = 0;
  std::size_t i = 0;
  while (i < order.size()) {
    // Advance over ties as a block so the curve is threshold-consistent.
    const double th = scores[static_cast<std::size_t>(order[i])];
    while (i < order.size() &&
           scores[static_cast<std::size_t>(order[i])] == th) {
      labels[static_cast<std::size_t>(order[i])] == 1 ? ++tp : ++fp;
      ++i;
    }
    curve.push_back({static_cast<double>(fp) / negatives,
                     static_cast<double>(tp) / positives, th});
  }
  return curve;
}

double auc(const std::vector<RocPoint>& curve) {
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    const double dx = curve[i].fpr - curve[i - 1].fpr;
    area += dx * 0.5 * (curve[i].tpr + curve[i - 1].tpr);
  }
  return area;
}

double roc_auc(const std::vector<double>& scores,
               const std::vector<int>& labels,
               const std::vector<int>& subset) {
  return auc(roc_curve(scores, labels, subset));
}

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.empty())
    throw std::runtime_error("pearson: size mismatch");
  const double n = static_cast<double>(a.size());
  const double ma = std::accumulate(a.begin(), a.end(), 0.0) / n;
  const double mb = std::accumulate(b.begin(), b.end(), 0.0) / n;
  double num = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    num += da * db;
    va += da * da;
    vb += db * db;
  }
  const double den = std::sqrt(va * vb);
  return den == 0.0 ? 0.0 : num / den;
}

namespace {
std::vector<double> ranks(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return x[a] < x[b]; });
  std::vector<double> r(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && x[order[j + 1]] == x[order[i]]) ++j;
    const double avg = 0.5 * (static_cast<double>(i) + static_cast<double>(j)) + 1.0;
    for (std::size_t k = i; k <= j; ++k) r[order[k]] = avg;
    i = j + 1;
  }
  return r;
}
}  // namespace

double spearman(const std::vector<double>& a, const std::vector<double>& b) {
  return pearson(ranks(a), ranks(b));
}

}  // namespace fcrit::ml
