// Internal instrumentation shared by the dense (matrix.cpp) and sparse
// (sparse.cpp) kernels: each kernel call lands one wall-time sample in a
// process-registry histogram (ml.kernel.<name>_ms) and, when tracing is
// enabled, one trace span — cheap enough to stay on permanently (the
// histogram reference is resolved once per kernel via a local static, the
// span is a relaxed atomic load while tracing is off).
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/timer.hpp"

namespace fcrit::ml::detail {

class KernelScope {
 public:
  KernelScope(const char* span_name, obs::Histogram& hist)
      : span_(span_name), hist_(hist) {}
  ~KernelScope() { hist_.observe(timer_.millis()); }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  obs::Span span_;
  obs::Histogram& hist_;
  util::Timer timer_;
};

/// Minimum per-chunk flop count before a kernel fans out: below this the
/// dispatch overhead beats the win, so the range collapses to one inline
/// chunk (util::parallel_for's min_chunk).
inline constexpr std::int64_t kGrainFlops = 16384;

/// min_chunk in rows for a kernel whose rows cost `flops_per_row` each.
inline std::int64_t row_grain(std::int64_t flops_per_row) {
  return std::max<std::int64_t>(
      1, kGrainFlops / std::max<std::int64_t>(1, flops_per_row));
}

}  // namespace fcrit::ml::detail
