// Dense row-major float matrix — the tensor type of the fcrit ML stack.
//
// Deliberately minimal: the GCN, its baselines and the explainer need
// matmul (plain, transposed-A, transposed-B), elementwise ops, row/col
// reductions and a few initializers. The three matmul kernels shard their
// output rows across the shared pool (src/util/parallel.hpp) with per-row
// accumulation order unchanged, so results are bitwise-identical to the
// serial path for any thread count; everything else stays a clear serial
// row-major loop.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/util/rng.hpp"

namespace fcrit::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols) : rows_(rows), cols_(cols) {
    assert(rows >= 0 && cols >= 0);
    data_.assign(static_cast<std::size_t>(rows) * cols, 0.0f);
  }

  static Matrix zeros(int rows, int cols) { return Matrix(rows, cols); }
  static Matrix full(int rows, int cols, float value);
  /// i.i.d. N(0, stddev^2).
  static Matrix randn(int rows, int cols, util::Rng& rng, float stddev);
  /// Glorot/Xavier uniform: U(-s, s) with s = sqrt(6 / (fan_in + fan_out)).
  static Matrix xavier(int fan_in, int fan_out, util::Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& operator()(int r, int c) {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    assert(r >= 0 && r < rows_ && c >= 0 && c < cols_);
    return data_[static_cast<std::size_t>(r) * cols_ + c];
  }

  std::span<float> row(int r) {
    return {data_.data() + static_cast<std::size_t>(r) * cols_,
            static_cast<std::size_t>(cols_)};
  }
  std::span<const float> row(int r) const {
    return {data_.data() + static_cast<std::size_t>(r) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float v) { std::fill(data_.begin(), data_.end(), v); }
  void set_zero() { fill(0.0f); }

  // In-place elementwise ops.
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(float s);
  Matrix& hadamard_(const Matrix& other);  // *this ⊙ other

  /// Frobenius norm squared.
  double frob2() const;

  std::string shape_string() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B (without materializing the transpose).
Matrix matmul_tn(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix matmul_nt(const Matrix& a, const Matrix& b);

Matrix transpose(const Matrix& a);

/// Column sums as a 1 x cols matrix.
Matrix col_sum(const Matrix& a);

}  // namespace fcrit::ml
