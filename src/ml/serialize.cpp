#include "src/ml/serialize.hpp"

#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <stdexcept>

namespace fcrit::ml {

namespace {
constexpr const char* kMagic = "fcrit-gcn-v1";
constexpr const char* kStdMagic = "fcrit-standardizer-v1";
}  // namespace

void expect_token(std::istream& is, const std::string& expected) {
  std::string token;
  is >> token;
  if (token != expected)
    throw std::runtime_error("load: expected '" + expected + "', got '" +
                             token + "'");
}

void save_gcn(const GcnModel& model, std::ostream& os) {
  const GcnConfig& cfg = model.config();
  os << kMagic << "\n";
  os << "in_features " << model.in_features() << "\n";
  os << "hidden " << cfg.hidden.size();
  for (const int h : cfg.hidden) os << " " << h;
  os << "\n";
  os << "output_dim " << cfg.output_dim << "\n";
  os << "log_softmax " << (cfg.log_softmax ? 1 : 0) << "\n";
  os << "dropout " << cfg.dropout << "\n";
  os << "dropout_after " << cfg.dropout_after << "\n";

  auto params = const_cast<GcnModel&>(model).params();
  os << "params " << params.size() << "\n";
  os.precision(std::numeric_limits<float>::max_digits10);
  for (const Param& p : params) {
    os << p.value->rows() << " " << p.value->cols() << "\n";
    for (int i = 0; i < p.value->rows(); ++i) {
      const auto row = p.value->row(i);
      for (int j = 0; j < p.value->cols(); ++j) {
        if (j) os << " ";
        os << row[j];
      }
      os << "\n";
    }
  }
}

GcnModel load_gcn(std::istream& is) {
  expect_token(is, kMagic);
  GcnConfig cfg;
  int in_features = 0;
  expect_token(is, "in_features");
  is >> in_features;
  expect_token(is, "hidden");
  std::size_t num_hidden = 0;
  is >> num_hidden;
  cfg.hidden.resize(num_hidden);
  for (auto& h : cfg.hidden) is >> h;
  expect_token(is, "output_dim");
  is >> cfg.output_dim;
  expect_token(is, "log_softmax");
  int ls = 0;
  is >> ls;
  cfg.log_softmax = ls != 0;
  expect_token(is, "dropout");
  is >> cfg.dropout;
  expect_token(is, "dropout_after");
  is >> cfg.dropout_after;
  if (!is) throw std::runtime_error("load_gcn: malformed header");

  GcnModel model(in_features, cfg);
  expect_token(is, "params");
  std::size_t num_params = 0;
  is >> num_params;
  auto params = model.params();
  if (num_params != params.size())
    throw std::runtime_error("load_gcn: parameter count mismatch");
  for (Param& p : params) {
    int rows = 0, cols = 0;
    is >> rows >> cols;
    if (rows != p.value->rows() || cols != p.value->cols())
      throw std::runtime_error("load_gcn: parameter shape mismatch");
    for (int i = 0; i < rows; ++i) {
      auto row = p.value->row(i);
      for (int j = 0; j < cols; ++j) is >> row[j];
    }
  }
  if (!is) throw std::runtime_error("load_gcn: truncated weights");
  return model;
}

void save_standardizer(const graphir::Standardizer& s, std::ostream& os) {
  os << kStdMagic << "\n" << s.mean.size() << "\n";
  os.precision(std::numeric_limits<double>::max_digits10);
  for (const double m : s.mean) os << m << " ";
  os << "\n";
  for (const double d : s.stddev) os << d << " ";
  os << "\n";
}

graphir::Standardizer load_standardizer(std::istream& is) {
  expect_token(is, kStdMagic);
  std::size_t n = 0;
  is >> n;
  graphir::Standardizer s;
  s.mean.resize(n);
  s.stddev.resize(n);
  for (double& m : s.mean) is >> m;
  for (double& d : s.stddev) is >> d;
  if (!is) throw std::runtime_error("load_standardizer: malformed input");
  return s;
}

void save_gcn_file(const GcnModel& model, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_gcn_file: cannot open " + path);
  save_gcn(model, os);
}

GcnModel load_gcn_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_gcn_file: cannot open " + path);
  return load_gcn(is);
}

void save_standardizer_file(const graphir::Standardizer& s,
                            const std::string& path) {
  std::ofstream os(path);
  if (!os)
    throw std::runtime_error("save_standardizer_file: cannot open " + path);
  save_standardizer(s, os);
}

graphir::Standardizer load_standardizer_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw std::runtime_error("load_standardizer_file: cannot open " + path);
  return load_standardizer(is);
}

GcnModel clone_gcn(const GcnModel& model) {
  GcnModel copy(model.in_features(), model.config());
  copy.copy_params_from(model);
  return copy;
}

}  // namespace fcrit::ml
