#include "src/ml/sgc.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/parallel.hpp"

namespace fcrit::ml {

void SgcClassifier::fit(const SparseMatrix& adj, const Matrix& x,
                        const std::vector<int>& labels,
                        const std::vector<int>& train_idx) {
  if (train_idx.empty()) throw std::runtime_error("SGC::fit: empty train set");
  s_ = x;
  for (int hop = 0; hop < config_.k; ++hop) s_ = adj.spmm(s_);

  const int f = s_.cols();
  // Binary logistic regression on the propagated features (two-class SGC
  // reduces to a single logit). The gradient loop stays serial on purpose:
  // a parallel reduction over train_idx would re-associate the FP sums and
  // make results depend on the thread count. SGC's parallelism comes from
  // the spmm propagation above.
  w_.assign(static_cast<std::size_t>(f) + 1, 0.0);
  std::vector<double> m(w_.size(), 0.0), v(w_.size(), 0.0), grad(w_.size());
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;

  for (int epoch = 1; epoch <= config_.epochs; ++epoch) {
    std::fill(grad.begin(), grad.end(), 0.0);
    for (const int i : train_idx) {
      const auto row = s_.row(i);
      double z = w_[static_cast<std::size_t>(f)];
      for (int j = 0; j < f; ++j) z += w_[static_cast<std::size_t>(j)] * row[j];
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err =
          p - static_cast<double>(labels[static_cast<std::size_t>(i)]);
      for (int j = 0; j < f; ++j)
        grad[static_cast<std::size_t>(j)] += err * row[j];
      grad[static_cast<std::size_t>(f)] += err;
    }
    const double inv = 1.0 / static_cast<double>(train_idx.size());
    for (std::size_t j = 0; j < w_.size(); ++j) {
      double g = grad[j] * inv;
      if (j + 1 < w_.size()) g += config_.weight_decay * w_[j];
      m[j] = b1 * m[j] + (1 - b1) * g;
      v[j] = b2 * v[j] + (1 - b2) * g * g;
      const double mhat = m[j] / (1 - std::pow(b1, epoch));
      const double vhat = v[j] / (1 - std::pow(b2, epoch));
      w_[j] -= config_.lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

std::vector<double> SgcClassifier::predict_proba() const {
  if (w_.empty()) throw std::runtime_error("SGC: not fitted");
  const int f = s_.cols();
  std::vector<double> p(static_cast<std::size_t>(s_.rows()));
  // Independent per-row dot products: safe to shard by row.
  util::parallel_for(0, s_.rows(), [&](std::int64_t r0, std::int64_t r1) {
    for (int i = static_cast<int>(r0); i < static_cast<int>(r1); ++i) {
      const auto row = s_.row(i);
      double z = w_[static_cast<std::size_t>(f)];
      for (int j = 0; j < f; ++j)
        z += w_[static_cast<std::size_t>(j)] * row[j];
      p[static_cast<std::size_t>(i)] = 1.0 / (1.0 + std::exp(-z));
    }
  });
  return p;
}

std::vector<int> SgcClassifier::predict_labels() const {
  const auto proba = predict_proba();
  std::vector<int> out(proba.size());
  for (std::size_t i = 0; i < proba.size(); ++i) out[i] = proba[i] >= 0.5;
  return out;
}

}  // namespace fcrit::ml
