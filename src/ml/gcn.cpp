#include "src/ml/gcn.hpp"

#include <cmath>
#include <stdexcept>

namespace fcrit::ml {

GcnModel::UseGuard::UseGuard(std::atomic<bool>& flag) : flag_(flag) {
  if (flag_.exchange(true, std::memory_order_acquire))
    throw std::logic_error(
        "GcnModel: concurrent forward/backward on one instance; "
        "clone per thread (ml::clone_gcn)");
}

GcnModel::UseGuard::~UseGuard() {
  flag_.store(false, std::memory_order_release);
}

GcnModel::GcnModel(int in_features, GcnConfig config)
    : in_features_(in_features), config_(std::move(config)),
      rng_(std::make_unique<util::Rng>(config_.seed)),
      in_use_(std::make_unique<std::atomic<bool>>(false)) {
  if (config_.hidden.empty())
    throw std::runtime_error("GcnModel: need at least one hidden layer");

  int width = in_features_;
  for (std::size_t k = 0; k < config_.hidden.size(); ++k) {
    auto conv = std::make_unique<GcnConv>(width, config_.hidden[k], *rng_);
    convs_.push_back(conv.get());
    layers_.push_back(std::move(conv));
    layers_.push_back(std::make_unique<Relu>());
    if (static_cast<int>(k) == config_.dropout_after &&
        config_.dropout > 0.0)
      layers_.push_back(std::make_unique<Dropout>(config_.dropout, *rng_));
    width = config_.hidden[k];
  }
  auto head = std::make_unique<GcnConv>(width, config_.output_dim, *rng_);
  convs_.push_back(head.get());
  layers_.push_back(std::move(head));
  if (config_.log_softmax) layers_.push_back(std::make_unique<LogSoftmax>());
}

void GcnModel::set_adjacency(const SparseMatrix* adj) {
  for (GcnConv* conv : convs_) conv->set_adjacency(adj);
}

void GcnModel::set_edge_grad_buffer(std::vector<float>* buf) {
  for (GcnConv* conv : convs_) conv->set_edge_grad_buffer(buf);
}

Matrix GcnModel::forward(const Matrix& x, bool training) {
  UseGuard guard(*in_use_);
  Matrix h = x;
  for (const auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

Matrix GcnModel::backward(const Matrix& grad_out) {
  UseGuard guard(*in_use_);
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param> GcnModel::params() {
  std::vector<Param> out;
  for (const auto& layer : layers_) layer->collect_params(out);
  return out;
}

void GcnModel::zero_grad() {
  for (const Param& p : params()) p.grad->set_zero();
}

void GcnModel::copy_params_from(const GcnModel& other) {
  auto mine = params();
  auto theirs = const_cast<GcnModel&>(other).params();
  if (mine.size() != theirs.size())
    throw std::runtime_error("copy_params_from: architecture mismatch");
  for (std::size_t i = 0; i < mine.size(); ++i) {
    if (mine[i].value->rows() != theirs[i].value->rows() ||
        mine[i].value->cols() != theirs[i].value->cols())
      throw std::runtime_error("copy_params_from: shape mismatch");
    *mine[i].value = *theirs[i].value;
  }
}

std::string GcnModel::describe() const {
  std::string out;
  int idx = 1;
  for (const auto& layer : layers_) {
    out += std::to_string(idx++) + ": " + layer->describe() + "\n";
  }
  return out;
}

std::vector<int> predict_labels(const Matrix& out) {
  std::vector<int> labels(static_cast<std::size_t>(out.rows()));
  for (int i = 0; i < out.rows(); ++i) {
    const auto row = out.row(i);
    int best = 0;
    for (int j = 1; j < out.cols(); ++j)
      if (row[j] > row[best]) best = j;
    labels[static_cast<std::size_t>(i)] = best;
  }
  return labels;
}

std::vector<double> class1_probability(const Matrix& logp) {
  if (logp.cols() != 2)
    throw std::runtime_error("class1_probability: expected 2 columns");
  std::vector<double> p(static_cast<std::size_t>(logp.rows()));
  for (int i = 0; i < logp.rows(); ++i)
    p[static_cast<std::size_t>(i)] = std::exp(static_cast<double>(logp(i, 1)));
  return p;
}

}  // namespace fcrit::ml
