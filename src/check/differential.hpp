// The five differential oracles of the correctness harness.
//
// Each check cross-examines a hand-optimized production path against an
// independent (slower, simpler) reference on the same design and returns a
// human-readable divergence description, or "" when the paths are
// bit-identical:
//
//   diff_packed_vs_scalar     PackedSimulator lane L  vs  a scalar
//                             single-pattern interpreter run per lane,
//                             every node value, every cycle
//   diff_fault_oracles        cone-restricted simulate_fault  vs  naive
//                             full-netlist re-simulation
//                             (use_cone_restriction=false)  vs  serial
//                             fault injection through
//                             PackedSimulator::inject
//   diff_campaign_equivalence frontier+batched campaign (1/2/4 threads)
//                             vs  unbatched frontier  vs  levelized cone
//                             reference, whole-universe run_all verdicts,
//                             plus serial PackedSimulator::inject replay
//                             on a strided fault subset
//   diff_static_prune         static dataflow triage (src/sla): fact
//                             certificate + proof records re-verified,
//                             every pruned fault re-simulated (must be
//                             Benign), campaign with pruning on vs off
//                             bit-identical
//   diff_serve_vs_pipeline    serve::ScoringEngine (cache + worker pool)
//                             vs  direct in-process scoring of the same
//                             bundle artifact
//
// The harness (src/check/harness.hpp) drives these over a randomized
// netlist fuzzer; tests also aim them at the registered designs.
#pragma once

#include <cstdint>
#include <string>

#include "src/check/scalar_sim.hpp"
#include "src/designs/designs.hpp"
#include "src/fault/fault_sim.hpp"

namespace fcrit::check {

/// Run `cycles` clock cycles of the design's stimulus (seeded with `seed`)
/// through PackedSimulator and through one ScalarSimulator per lane and
/// compare every node word bit-for-bit after each combinational settle.
/// `bug` plants a deliberate defect in the scalar reference (self-test).
std::string diff_packed_vs_scalar(const designs::Design& design, int cycles,
                                  std::uint64_t seed,
                                  ScalarBug bug = ScalarBug::kNone);

/// For up to `max_faults` faults (deterministically strided across the full
/// stuck-at universe), compare the cone-restricted campaign verdict against
/// the naive full re-simulation and against serial re-simulation with
/// PackedSimulator::inject: dangerous_lanes, detected_lanes,
/// mismatch_cycles and first_detect_cycle must all agree exactly.
std::string diff_fault_oracles(const designs::Design& design,
                               const fault::CampaignConfig& config,
                               int max_faults);

/// Deliberate defects planted in one campaign leg so tests (and the CLI
/// `--self-test`) can prove the campaign oracle is able to fail. kNone
/// for real checking.
enum class CampaignBug {
  kNone = 0,
  /// Bump fault 0's mismatch_cycles in the batched @2t leg by one.
  kMismatchOffByOne,
  /// Clear detected_lanes on the first detected fault of that leg.
  kDropDetection,
};

/// Run the full stuck-at campaign (run_all) through every engine leg —
/// levelized cone (the reference), unbatched frontier, and
/// frontier+batch+collapse at 1, 2 and 4 threads — and require
/// byte-identical dangerous_lanes / detected_lanes / mismatch_cycles /
/// first_detect_cycle for every fault. Additionally replays up to
/// `max_faults` faults (strided across the universe) through serial
/// PackedSimulator::inject as an engine-independent reference.
std::string diff_campaign_equivalence(const designs::Design& design,
                                      const fault::CampaignConfig& config,
                                      int max_faults,
                                      CampaignBug bug = CampaignBug::kNone);

/// Deliberate defects planted in the static-prune oracle's triage result
/// so tests (and `--self-test`) can prove the oracle has teeth.
enum class PruneBug {
  kNone = 0,
  /// Append a fabricated constant-blocked proof for an observable fault
  /// (or one with no closure at all): verify_proof must reject it.
  kBadProof,
  /// Flip a must-simulate fault's triage verdict to kProvedBenign without
  /// any proof: the re-simulation sweep must observe it.
  kPruneObservable,
};

/// Gate the static dataflow triage (src/sla) end to end:
///   1. the exported fact certificate must pass verify_facts,
///   2. every ProofRecord must pass verify_proof independently,
///   3. every fault triaged kProvedBenign must come back all-zero
///      (undetected, zero mismatch cycles) from a real simulation with
///      pruning disabled — the soundness contract, checked by simulation,
///   4. run_all with pruning on must be bit-identical (including
///      cone_size) to run_all with pruning off.
std::string diff_static_prune(const designs::Design& design,
                              const fault::CampaignConfig& config,
                              PruneBug bug = PruneBug::kNone);

/// Pack a deterministic (untrained) model bundle for the design into
/// `scratch_dir`, score it through a multi-threaded ScoringEngine — twice
/// synchronously (second hit must come from the LRU cache) and once through
/// the worker-pool submit path — and compare every probability, class and
/// score against a direct in-process replay of the scoring pipeline.
std::string diff_serve_vs_pipeline(const designs::Design& design,
                                   const std::string& scratch_dir,
                                   std::uint64_t seed);

}  // namespace fcrit::check
