#include "src/check/harness.hpp"

#include <ostream>
#include <sstream>

#include "src/check/differential.hpp"
#include "src/lint/lint.hpp"
#include "src/netlist/verilog_writer.hpp"
#include "src/util/rng.hpp"

namespace fcrit::check {

namespace {

fault::CampaignConfig fault_config(int cycles, std::uint64_t seed) {
  fault::CampaignConfig fc;
  fc.cycles = cycles;
  fc.seed = seed;
  fc.num_threads = 1;
  return fc;
}

/// Re-run exactly one oracle on a candidate circuit; returns the divergence
/// message ("" when the candidate passes). Used both for the initial check
/// and to decide whether a shrink step still reproduces the failure.
std::string run_oracle(const std::string& oracle,
                       const designs::RandomCircuitConfig& circuit,
                       int cycles, std::uint64_t seed,
                       const CheckConfig& config) {
  const designs::Design design = designs::build_random_circuit(circuit);
  if (oracle == "packed-vs-scalar")
    return diff_packed_vs_scalar(design, cycles, seed, config.scalar_bug);
  if (oracle == "fault")
    return diff_fault_oracles(design, fault_config(cycles, seed),
                              config.max_faults);
  if (oracle == "campaign")
    return diff_campaign_equivalence(design, fault_config(cycles, seed),
                                     config.max_faults, config.campaign_bug);
  if (oracle == "static-prune")
    return diff_static_prune(design, fault_config(cycles, seed),
                             config.prune_bug);
  return diff_serve_vs_pipeline(design, config.scratch_dir, seed);
}

/// Greedy shrink: try one reduction at a time (halve gates, drop flops,
/// halve inputs/outputs/cycles) and keep it whenever the same oracle still
/// diverges with the same trial seed. Bounded, deterministic, and cheap —
/// every accepted step at least halves one dimension.
void shrink_divergence(Divergence& d, const CheckConfig& config) {
  bool progress = true;
  int budget = 48;
  while (progress && budget > 0) {
    progress = false;
    for (int candidate = 0; candidate < 5 && budget > 0; ++candidate) {
      designs::RandomCircuitConfig c = d.circuit;
      int cycles = d.cycles;
      switch (candidate) {
        case 0:
          if (c.num_gates <= 1) continue;
          c.num_gates = c.num_gates / 2;
          break;
        case 1:
          if (c.num_flops == 0) continue;
          c.num_flops = c.num_flops > 1 ? c.num_flops / 2 : 0;
          break;
        case 2:
          if (c.num_inputs <= 1) continue;
          c.num_inputs = c.num_inputs / 2;
          break;
        case 3:
          if (c.num_outputs <= 1) continue;
          c.num_outputs = c.num_outputs / 2;
          break;
        case 4:
          if (cycles <= 2) continue;
          cycles = cycles / 2;
          break;
      }
      --budget;
      std::string msg;
      try {
        msg = run_oracle(d.oracle, c, cycles, d.seed, config);
      } catch (const std::exception& e) {
        // A crash on the reduced circuit still reproduces a defect.
        msg = std::string("exception: ") + e.what();
      }
      if (!msg.empty()) {
        d.circuit = c;
        d.cycles = cycles;
        d.message = msg;
        ++d.shrink_steps;
        progress = true;
      }
    }
  }
}

std::string dump_verilog(const designs::RandomCircuitConfig& circuit) {
  const designs::Design design = designs::build_random_circuit(circuit);
  std::ostringstream os;
  netlist::write_verilog(design.netlist, os);
  return os.str();
}

/// Lint the shrunk repro circuit so the report distinguishes "oracle bug"
/// from "generator produced a structurally broken netlist".
std::string lint_circuit(const designs::RandomCircuitConfig& circuit) {
  try {
    const designs::Design design = designs::build_random_circuit(circuit);
    lint::LintReport report = lint::lint_netlist(design.netlist);
    report.target_name = design.name;
    return report.clean() ? std::string() : report.to_string();
  } catch (const std::exception& e) {
    return std::string("lint crashed: ") + e.what();
  }
}

}  // namespace

CheckReport run_checks(const CheckConfig& config, std::ostream* log) {
  CheckReport report;
  util::SplitMix64 mix(config.seed);

  for (int trial = 0; trial < config.trials; ++trial) {
    const std::uint64_t trial_seed = mix.next();
    designs::RandomCircuitConfig circuit;
    circuit.num_inputs = config.inputs;
    circuit.num_gates = config.gates;
    circuit.num_flops = config.flops;
    circuit.num_outputs = config.outputs;
    circuit.seed = trial_seed;

    Divergence d;
    d.trial = trial;
    d.seed = trial_seed;
    d.circuit = circuit;
    d.cycles = config.cycles;

    d.oracle = "packed-vs-scalar";
    d.message = run_oracle(d.oracle, circuit, config.cycles, trial_seed,
                           config);
    ++report.packed_checks;

    if (d.message.empty()) {
      d.oracle = "fault";
      d.message =
          run_oracle(d.oracle, circuit, config.cycles, trial_seed, config);
      ++report.fault_checks;
    }

    if (d.message.empty() && config.campaign_every > 0 &&
        trial % config.campaign_every == 0) {
      d.oracle = "campaign";
      d.message =
          run_oracle(d.oracle, circuit, config.cycles, trial_seed, config);
      ++report.campaign_checks;
    }

    if (d.message.empty() && config.prune_every > 0 &&
        trial % config.prune_every == 0) {
      d.oracle = "static-prune";
      d.message =
          run_oracle(d.oracle, circuit, config.cycles, trial_seed, config);
      ++report.prune_checks;
    }

    if (d.message.empty() && config.serve_every > 0 &&
        !config.scratch_dir.empty() && trial % config.serve_every == 0) {
      d.oracle = "serve";
      d.message =
          run_oracle(d.oracle, circuit, config.cycles, trial_seed, config);
      ++report.serve_checks;
    }

    ++report.trials_run;

    if (!d.message.empty()) {
      if (config.shrink) shrink_divergence(d, config);
      if (config.dump_netlist) d.netlist_verilog = dump_verilog(d.circuit);
      d.lint_report = lint_circuit(d.circuit);
      report.divergences.push_back(std::move(d));
      if (log) *log << format_divergence(report.divergences.back());
      return report;
    }

    if (log && (trial + 1) % 10 == 0)
      *log << "check: " << (trial + 1) << "/" << config.trials
           << " trials clean\n";
  }
  return report;
}

std::string format_divergence(const Divergence& d) {
  std::ostringstream os;
  os << "DIVERGENCE (trial " << d.trial << ", oracle " << d.oracle << ")\n"
     << "  " << d.message << "\n"
     << "  reproduce: seed=" << d.seed << " inputs=" << d.circuit.num_inputs
     << " gates=" << d.circuit.num_gates << " flops=" << d.circuit.num_flops
     << " outputs=" << d.circuit.num_outputs << " cycles=" << d.cycles
     << " (after " << d.shrink_steps << " shrink steps)\n";
  if (!d.lint_report.empty())
    os << "  lint on shrunk circuit:\n" << d.lint_report;
  if (!d.netlist_verilog.empty())
    os << "  shrunk netlist:\n" << d.netlist_verilog;
  return os.str();
}

}  // namespace fcrit::check
