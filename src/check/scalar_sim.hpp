// Scalar single-pattern reference interpreter for the differential oracle.
//
// This is the "obviously correct" simulator the bit-parallel PackedSimulator
// is checked against: one bool per node, one workload at a time, gate
// semantics written out as an independent switch (not derived from
// eval_packed), and a private DFS topological order (not netlist::levelize).
// It shares nothing with the production simulator beyond the Netlist data
// model, so a bug in the packed evaluation, the levelization, or the word
// packing shows up as a divergence instead of cancelling out.
//
// The ScalarBug knob plants a deliberate defect (wrong XOR, never-clocking
// flip-flops) so tests can prove the oracle is actually able to fail.
#pragma once

#include <cstdint>
#include <vector>

#include "src/netlist/netlist.hpp"

namespace fcrit::check {

/// Deliberate defects for harness self-tests. kNone is the reference
/// semantics; everything else must be caught by the differential oracle.
enum class ScalarBug {
  kNone,
  kXorAsOr,   // evaluates EO2/EN2 as OR2/NOR2
  kStaleDff,  // flip-flops never clock (stay at their reset state)
};

class ScalarSimulator {
 public:
  explicit ScalarSimulator(const netlist::Netlist& nl,
                           ScalarBug bug = ScalarBug::kNone);

  /// Power-on state: every flip-flop and node value 0, constants forced.
  void reset();

  /// Settle combinational logic for one cycle; `pi_bits[i]` drives input i
  /// (in netlist inputs() order). Flip-flops keep holding current state.
  void eval_comb(const std::vector<bool>& pi_bits);

  /// Clock edge: every DFF captures its D.
  void clock();

  void step(const std::vector<bool>& pi_bits) {
    eval_comb(pi_bits);
    clock();
  }

  /// Node value after the last eval_comb().
  bool value(netlist::NodeId id) const { return value_[id] != 0; }

 private:
  bool eval_gate(netlist::NodeId id) const;

  const netlist::Netlist* nl_;
  ScalarBug bug_;
  std::vector<netlist::NodeId> order_;  // private topological order (DFS)
  std::vector<std::uint8_t> value_;
};

}  // namespace fcrit::check
