#include "src/check/scalar_sim.hpp"

#include <stdexcept>

namespace fcrit::check {

using netlist::CellKind;
using netlist::NodeId;

namespace {

bool is_comb_source(CellKind k) {
  return k == CellKind::kInput || k == CellKind::kConst0 ||
         k == CellKind::kConst1 || k == CellKind::kDff;
}

}  // namespace

ScalarSimulator::ScalarSimulator(const netlist::Netlist& nl, ScalarBug bug)
    : nl_(&nl), bug_(bug) {
  // Iterative post-order DFS over combinational gates; DFF/PI/const fanins
  // are leaves (their values are state, not ordering constraints). This is
  // a different algorithm from levelize()'s Kahn worklist on purpose.
  const auto n = static_cast<NodeId>(nl.num_nodes());
  std::vector<std::uint8_t> mark(n, 0);  // 0 new, 1 on stack, 2 done
  std::vector<std::pair<NodeId, std::size_t>> stack;
  order_.reserve(n);
  for (NodeId root = 0; root < n; ++root) {
    if (mark[root] || is_comb_source(nl.kind(root))) continue;
    stack.emplace_back(root, 0);
    mark[root] = 1;
    while (!stack.empty()) {
      auto& [id, next_fanin] = stack.back();
      const auto fanins = nl.fanins(id);
      if (next_fanin < fanins.size()) {
        const NodeId f = fanins[next_fanin++];
        if (!mark[f] && !is_comb_source(nl.kind(f))) {
          stack.emplace_back(f, 0);
          mark[f] = 1;
        } else if (mark[f] == 1) {
          throw std::runtime_error(
              "ScalarSimulator: combinational cycle through '" +
              nl.node(f).name + "'");
        }
      } else {
        mark[id] = 2;
        order_.push_back(id);
        stack.pop_back();
      }
    }
  }
  value_.assign(n, 0);
  reset();
}

void ScalarSimulator::reset() {
  std::fill(value_.begin(), value_.end(), 0);
  for (NodeId id = 0; id < nl_->num_nodes(); ++id)
    if (nl_->kind(id) == CellKind::kConst1) value_[id] = 1;
}

bool ScalarSimulator::eval_gate(NodeId id) const {
  const netlist::Node& n = nl_->node(id);
  bool in[netlist::kMaxFanins] = {};
  for (std::size_t i = 0; i < n.fanin_count; ++i)
    in[i] = value_[n.fanin[i]] != 0;

  CellKind kind = n.kind;
  if (bug_ == ScalarBug::kXorAsOr) {
    if (kind == CellKind::kXor2) kind = CellKind::kOr2;
    if (kind == CellKind::kXnor2) kind = CellKind::kNor2;
  }

  switch (kind) {
    case CellKind::kBuf:
      return in[0];
    case CellKind::kInv:
      return !in[0];
    case CellKind::kAnd2:
      return in[0] && in[1];
    case CellKind::kAnd3:
      return in[0] && in[1] && in[2];
    case CellKind::kAnd4:
      return in[0] && in[1] && in[2] && in[3];
    case CellKind::kNand2:
      return !(in[0] && in[1]);
    case CellKind::kNand3:
      return !(in[0] && in[1] && in[2]);
    case CellKind::kNand4:
      return !(in[0] && in[1] && in[2] && in[3]);
    case CellKind::kOr2:
      return in[0] || in[1];
    case CellKind::kOr3:
      return in[0] || in[1] || in[2];
    case CellKind::kOr4:
      return in[0] || in[1] || in[2] || in[3];
    case CellKind::kNor2:
      return !(in[0] || in[1]);
    case CellKind::kNor3:
      return !(in[0] || in[1] || in[2]);
    case CellKind::kNor4:
      return !(in[0] || in[1] || in[2] || in[3]);
    case CellKind::kXor2:
      return in[0] != in[1];
    case CellKind::kXnor2:
      return in[0] == in[1];
    case CellKind::kAoi21:
      return !((in[0] && in[1]) || in[2]);
    case CellKind::kAoi22:
      return !((in[0] && in[1]) || (in[2] && in[3]));
    case CellKind::kOai21:
      return !((in[0] || in[1]) && in[2]);
    case CellKind::kOai22:
      return !((in[0] || in[1]) && (in[2] || in[3]));
    case CellKind::kMux2:
      return in[2] ? in[1] : in[0];
    default:
      throw std::runtime_error("ScalarSimulator: non-evaluable cell '" +
                               nl_->node(id).name + "'");
  }
}

void ScalarSimulator::eval_comb(const std::vector<bool>& pi_bits) {
  const auto& inputs = nl_->inputs();
  if (pi_bits.size() != inputs.size())
    throw std::runtime_error("ScalarSimulator::eval_comb: input bit count");
  for (std::size_t i = 0; i < inputs.size(); ++i)
    value_[inputs[i]] = pi_bits[i] ? 1 : 0;
  for (const NodeId id : order_) value_[id] = eval_gate(id) ? 1 : 0;
}

void ScalarSimulator::clock() {
  if (bug_ == ScalarBug::kStaleDff) return;
  const auto& flops = nl_->flops();
  std::vector<std::uint8_t> next(flops.size(), 0);
  for (std::size_t i = 0; i < flops.size(); ++i)
    next[i] = value_[nl_->node(flops[i]).fanin[0]];
  for (std::size_t i = 0; i < flops.size(); ++i) value_[flops[i]] = next[i];
}

}  // namespace fcrit::check
