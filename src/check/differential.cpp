#include "src/check/differential.hpp"

#include <array>
#include <bit>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <vector>

#include "src/fault/fault.hpp"
#include "src/graphir/features.hpp"
#include "src/graphir/graph.hpp"
#include "src/ml/serialize.hpp"
#include "src/netlist/verilog_writer.hpp"
#include "src/serve/bundle.hpp"
#include "src/serve/engine.hpp"
#include "src/sim/packed_sim.hpp"
#include "src/sim/probability.hpp"
#include "src/sim/stimulus.hpp"
#include "src/sla/triage.hpp"

namespace fcrit::check {

using netlist::NodeId;

std::string diff_packed_vs_scalar(const designs::Design& design, int cycles,
                                  std::uint64_t seed, ScalarBug bug) {
  const netlist::Netlist& nl = design.netlist;
  const auto num_nodes = nl.num_nodes();

  // One packed pass, recording the stimulus words and every node word per
  // cycle so the 64 scalar replays can compare against them.
  sim::PackedSimulator packed(nl);
  sim::StimulusGenerator stim(nl, design.stimulus, seed);
  std::vector<std::vector<std::uint64_t>> stim_words(
      static_cast<std::size_t>(cycles));
  std::vector<std::uint64_t> trace(
      static_cast<std::size_t>(cycles) * num_nodes);
  for (int t = 0; t < cycles; ++t) {
    stim.next_cycle(stim_words[static_cast<std::size_t>(t)]);
    packed.eval_comb(stim_words[static_cast<std::size_t>(t)]);
    std::uint64_t* row = trace.data() +
                         static_cast<std::size_t>(t) * num_nodes;
    for (NodeId id = 0; id < num_nodes; ++id) row[id] = packed.value(id);
    packed.clock();
  }

  // Scalar replay, one independent sequential simulation per lane.
  std::vector<bool> bits(nl.inputs().size());
  for (int lane = 0; lane < sim::kLanes; ++lane) {
    ScalarSimulator scalar(nl, bug);
    for (int t = 0; t < cycles; ++t) {
      const auto& words = stim_words[static_cast<std::size_t>(t)];
      for (std::size_t i = 0; i < words.size(); ++i)
        bits[i] = (words[i] >> lane) & 1;
      scalar.eval_comb(bits);
      const std::uint64_t* row =
          trace.data() + static_cast<std::size_t>(t) * num_nodes;
      for (NodeId id = 0; id < num_nodes; ++id) {
        const bool packed_bit = (row[id] >> lane) & 1;
        if (packed_bit != scalar.value(id)) {
          std::ostringstream os;
          os << "packed-vs-scalar: node '" << nl.node(id).name << "' ("
             << netlist::spec(nl.kind(id)).name << ") cycle " << t
             << " lane " << lane << ": packed=" << packed_bit
             << " scalar=" << scalar.value(id);
          return os.str();
        }
      }
      scalar.clock();
    }
  }
  return {};
}

namespace {

/// Reference fault verdict: serial re-simulation of the whole netlist with
/// the fault injected through PackedSimulator::inject, compared per cycle
/// against the campaign's golden trace. Independent of simulate_fault's
/// cone machinery and of its counter widths.
fault::FaultResult injected_fault_result(const designs::Design& design,
                                         const fault::CampaignConfig& config,
                                         const fault::FaultCampaign& golden,
                                         const fault::Fault& f) {
  const netlist::Netlist& nl = design.netlist;
  fault::FaultResult r;
  r.fault = f;

  sim::PackedSimulator simr(nl);
  simr.inject(f.node, f.stuck_value);
  sim::StimulusGenerator stim(nl, design.stimulus, config.seed);
  std::vector<std::uint64_t> words;
  std::array<std::uint32_t, sim::kLanes> lane_mismatch_cycles{};

  for (int t = 0; t < config.cycles; ++t) {
    stim.next_cycle(words);
    simr.eval_comb(words);
    std::uint64_t any_mismatch = 0;
    for (const auto& po : nl.outputs())
      any_mismatch |=
          simr.value(po.driver) ^ golden.golden_value(t, po.driver);
    if (any_mismatch) {
      if (r.first_detect_cycle < 0) r.first_detect_cycle = t;
      r.detected_lanes |= any_mismatch;
      r.mismatch_cycles +=
          static_cast<std::uint32_t>(std::popcount(any_mismatch));
      std::uint64_t m = any_mismatch;
      while (m) {
        ++lane_mismatch_cycles[static_cast<std::size_t>(
            std::countr_zero(m))];
        m &= m - 1;
      }
    }
    simr.clock();
  }

  const auto threshold =
      static_cast<std::uint32_t>(config.min_mismatch_cycles());
  for (int lane = 0; lane < sim::kLanes; ++lane) {
    if (lane_mismatch_cycles[static_cast<std::size_t>(lane)] >= threshold)
      r.dangerous_lanes |= (1ULL << lane);
  }
  return r;
}

std::string compare_fault_results(const netlist::Netlist& nl,
                                  const fault::Fault& f,
                                  const fault::FaultResult& a,
                                  const fault::FaultResult& b,
                                  const char* a_name, const char* b_name,
                                  const char* oracle = "fault-oracle") {
  std::ostringstream os;
  os << std::hex;
  if (a.dangerous_lanes != b.dangerous_lanes)
    os << "dangerous_lanes " << a_name << "=" << a.dangerous_lanes << " "
       << b_name << "=" << b.dangerous_lanes << "; ";
  if (a.detected_lanes != b.detected_lanes)
    os << "detected_lanes " << a_name << "=" << a.detected_lanes << " "
       << b_name << "=" << b.detected_lanes << "; ";
  os << std::dec;
  if (a.mismatch_cycles != b.mismatch_cycles)
    os << "mismatch_cycles " << a_name << "=" << a.mismatch_cycles << " "
       << b_name << "=" << b.mismatch_cycles << "; ";
  if (a.first_detect_cycle != b.first_detect_cycle)
    os << "first_detect_cycle " << a_name << "=" << a.first_detect_cycle
       << " " << b_name << "=" << b.first_detect_cycle << "; ";
  std::string detail = os.str();
  if (detail.empty()) return {};
  return std::string(oracle) + ": " + fault_name(nl, f) + ": " + detail;
}

}  // namespace

std::string diff_fault_oracles(const designs::Design& design,
                               const fault::CampaignConfig& config,
                               int max_faults) {
  const netlist::Netlist& nl = design.netlist;

  fault::CampaignConfig cone_cfg = config;
  cone_cfg.use_cone_restriction = true;
  fault::CampaignConfig naive_cfg = config;
  naive_cfg.use_cone_restriction = false;

  fault::FaultCampaign cone(nl, design.stimulus, cone_cfg);
  fault::FaultCampaign naive(nl, design.stimulus, naive_cfg);
  cone.run_golden();
  naive.run_golden();

  const auto universe = fault::full_fault_list(nl);
  if (universe.empty()) return {};
  const std::size_t stride =
      max_faults > 0
          ? std::max<std::size_t>(
                1, universe.size() / static_cast<std::size_t>(max_faults))
          : 1;

  for (std::size_t i = 0; i < universe.size(); i += stride) {
    const fault::Fault& f = universe[i];
    const fault::FaultResult rc = cone.simulate_fault(f);
    const fault::FaultResult rn = naive.simulate_fault(f);
    const fault::FaultResult ri =
        injected_fault_result(design, config, cone, f);
    if (auto msg = compare_fault_results(nl, f, rc, rn, "cone", "naive");
        !msg.empty())
      return msg;
    if (auto msg = compare_fault_results(nl, f, rc, ri, "cone", "injected");
        !msg.empty())
      return msg;
    if (rc.cone_size > rn.cone_size)
      return "fault-oracle: " + fault_name(nl, f) +
             ": cone_size exceeds naive re-simulation size";
  }
  return {};
}

std::string diff_campaign_equivalence(const designs::Design& design,
                                      const fault::CampaignConfig& config,
                                      int max_faults, CampaignBug bug) {
  const netlist::Netlist& nl = design.netlist;

  // Reference leg: the levelized cone sweep, single-threaded. Its campaign
  // object doubles as the golden-trace holder for the injected replay.
  fault::CampaignConfig ref_cfg = config;
  ref_cfg.engine = fault::FiEngine::kLevelized;
  ref_cfg.use_cone_restriction = true;
  ref_cfg.num_threads = 1;
  fault::FaultCampaign ref_campaign(nl, design.stimulus, ref_cfg);
  const fault::CampaignResult ref = ref_campaign.run_all();
  if (ref.faults.empty()) return {};

  struct Leg {
    std::string name;
    fault::CampaignConfig cfg;
  };
  std::vector<Leg> legs;
  {
    fault::CampaignConfig fc = config;
    fc.engine = fault::FiEngine::kFrontier;
    fc.batch_faults = false;
    fc.collapse_equivalent = false;
    fc.num_threads = 1;
    legs.push_back({"frontier", fc});
    for (const int threads : {1, 2, 4}) {
      fault::CampaignConfig bc = config;
      bc.engine = fault::FiEngine::kFrontier;
      bc.batch_faults = true;
      bc.collapse_equivalent = true;
      bc.num_threads = threads;
      legs.push_back({"f+batch@" + std::to_string(threads) + "t", bc});
    }
  }

  for (const Leg& leg : legs) {
    fault::FaultCampaign campaign(nl, design.stimulus, leg.cfg);
    fault::CampaignResult r = campaign.run_all();

    // Planted defects corrupt exactly one leg (the batched 2-thread one)
    // so the self-test proves the comparison below has teeth.
    if (leg.name == "f+batch@2t" && bug != CampaignBug::kNone &&
        !r.faults.empty()) {
      if (bug == CampaignBug::kMismatchOffByOne) {
        r.faults.front().mismatch_cycles += 1;
      } else if (bug == CampaignBug::kDropDetection) {
        for (auto& fr : r.faults)
          if (fr.detected_lanes) {
            fr.detected_lanes = 0;
            break;
          }
      }
    }

    if (r.faults.size() != ref.faults.size())
      return "campaign-oracle: leg '" + leg.name + "' returned " +
             std::to_string(r.faults.size()) + " verdicts, reference " +
             std::to_string(ref.faults.size());
    for (std::size_t i = 0; i < ref.faults.size(); ++i) {
      const fault::FaultResult& a = ref.faults[i];
      const fault::FaultResult& b = r.faults[i];
      if (a.fault.node != b.fault.node ||
          a.fault.stuck_value != b.fault.stuck_value)
        return "campaign-oracle: leg '" + leg.name +
               "' reordered the fault universe at index " +
               std::to_string(i);
      if (auto msg = compare_fault_results(nl, a.fault, a, b, "cone",
                                           leg.name.c_str(),
                                           "campaign-oracle");
          !msg.empty())
        return msg;
    }
  }

  // Engine-independent replay: serial fault injection through
  // PackedSimulator::inject on a deterministic strided subset.
  const std::size_t stride =
      max_faults > 0
          ? std::max<std::size_t>(
                1, ref.faults.size() / static_cast<std::size_t>(max_faults))
          : 1;
  for (std::size_t i = 0; i < ref.faults.size(); i += stride) {
    const fault::FaultResult& a = ref.faults[i];
    const fault::FaultResult ri =
        injected_fault_result(design, ref_cfg, ref_campaign, a.fault);
    if (auto msg = compare_fault_results(nl, a.fault, a, ri, "cone",
                                         "injected", "campaign-oracle");
        !msg.empty())
      return msg;
  }
  return {};
}

std::string diff_static_prune(const designs::Design& design,
                              const fault::CampaignConfig& config,
                              PruneBug bug) {
  const netlist::Netlist& nl = design.netlist;
  const auto universe = fault::full_fault_list(nl);
  if (universe.empty()) return {};

  // 1. The analysis must ship a certificate the independent checker
  // accepts (every constant and equivalence fact re-proved locally).
  const sla::DataflowAnalysis analysis = sla::DataflowAnalysis::run(nl);
  std::string why;
  if (!sla::verify_facts(nl, analysis, &why))
    return "static-prune-oracle: fact certificate rejected: " + why;

  sla::TriageResult triage = sla::triage_faults(nl, analysis, universe);
  if (triage.records.size() != universe.size())
    return "static-prune-oracle: triage returned " +
           std::to_string(triage.records.size()) + " records for " +
           std::to_string(universe.size()) + " faults";

  if (bug == PruneBug::kBadProof) {
    // Fabricate a constant-blocked proof for an observable fault: its
    // singleton "closure" cannot be closed (the site is observable, so at
    // least one escape edge is unblocked, or the site drives an output).
    sla::ProofRecord bogus;
    bogus.kind = sla::ProofKind::kConstantBlocked;
    std::size_t victim = universe.size();
    for (std::size_t i = 0; i < universe.size(); ++i)
      if (triage.records[i].verdict == sla::TriageVerdict::kMustSimulate) {
        victim = i;
        break;
      }
    if (victim < universe.size()) {
      bogus.fault = universe[victim];
      bogus.closure = static_cast<std::int32_t>(triage.closures.size());
      triage.closures.push_back({universe[victim].node});
    } else {
      bogus.fault = universe.front();
      bogus.closure = -1;  // a proof with no closure at all
    }
    triage.proofs.push_back(bogus);
  }

  // 2. Every proof record must stand on its own.
  for (std::size_t p = 0; p < triage.proofs.size(); ++p) {
    if (!sla::verify_proof(nl, analysis, triage, p, &why))
      return "static-prune-oracle: " +
             std::string(sla::proof_kind_name(triage.proofs[p].kind)) +
             " proof for " + fault_name(nl, triage.proofs[p].fault) +
             " rejected: " + why;
  }

  // 3. Simulate the full universe with pruning off; every pruned fault's
  // real verdict must be all-zero (the exact result pruning synthesizes).
  fault::CampaignConfig off_cfg = config;
  off_cfg.static_prune = false;
  fault::FaultCampaign campaign_off(nl, design.stimulus, off_cfg);
  const fault::CampaignResult ref = campaign_off.run_all();
  if (ref.faults.size() != universe.size())
    return "static-prune-oracle: reference campaign returned " +
           std::to_string(ref.faults.size()) + " verdicts for " +
           std::to_string(universe.size()) + " faults";

  if (bug == PruneBug::kPruneObservable) {
    // Mark a detected fault pruned (the first one, falling back to any
    // must-simulate fault) so the sweep below must flag it.
    std::size_t victim = universe.size();
    for (std::size_t i = 0; i < universe.size(); ++i) {
      if (triage.records[i].verdict != sla::TriageVerdict::kMustSimulate)
        continue;
      if (victim == universe.size()) victim = i;
      if (ref.faults[i].detected_lanes != 0) {
        victim = i;
        break;
      }
    }
    if (victim < universe.size())
      triage.records[victim].verdict = sla::TriageVerdict::kProvedBenign;
  }

  for (std::size_t i = 0; i < universe.size(); ++i) {
    if (triage.records[i].verdict != sla::TriageVerdict::kProvedBenign)
      continue;
    const fault::FaultResult& r = ref.faults[i];
    if (r.dangerous_lanes != 0 || r.detected_lanes != 0 ||
        r.mismatch_cycles != 0 || r.first_detect_cycle >= 0) {
      std::ostringstream os;
      os << "static-prune-oracle: pruned fault " << fault_name(nl, universe[i])
         << " (" << sla::proof_kind_name(triage.records[i].kind)
         << ") is observable in simulation: detected_lanes=" << std::hex
         << r.detected_lanes << std::dec
         << " mismatch_cycles=" << r.mismatch_cycles
         << " first_detect_cycle=" << r.first_detect_cycle;
      return os.str();
    }
  }

  // 4. The production path: run_all with pruning on must be bit-identical
  // to the unpruned reference, cone_size included.
  fault::CampaignConfig on_cfg = config;
  on_cfg.static_prune = true;
  fault::FaultCampaign campaign_on(nl, design.stimulus, on_cfg);
  const fault::CampaignResult pruned = campaign_on.run_all();
  if (pruned.faults.size() != ref.faults.size())
    return "static-prune-oracle: pruned campaign returned " +
           std::to_string(pruned.faults.size()) + " verdicts, reference " +
           std::to_string(ref.faults.size());
  for (std::size_t i = 0; i < ref.faults.size(); ++i) {
    const fault::FaultResult& a = ref.faults[i];
    const fault::FaultResult& b = pruned.faults[i];
    if (a.fault.node != b.fault.node ||
        a.fault.stuck_value != b.fault.stuck_value)
      return "static-prune-oracle: pruned campaign reordered the fault "
             "universe at index " + std::to_string(i);
    if (auto msg = compare_fault_results(nl, a.fault, a, b, "sim", "pruned",
                                         "static-prune-oracle");
        !msg.empty())
      return msg;
    if (a.cone_size != b.cone_size)
      return "static-prune-oracle: " + fault_name(nl, a.fault) +
             ": cone_size sim=" + std::to_string(a.cone_size) +
             " pruned=" + std::to_string(b.cone_size);
  }
  return {};
}

namespace {

/// A deterministic untrained bundle for the design: forward passes through
/// freshly-initialized GCNs are as good as trained ones for a bit-identity
/// oracle, and skip minutes of training per fuzz trial.
serve::ModelBundle make_check_bundle(const designs::Design& design,
                                     std::uint64_t seed) {
  serve::ModelBundle b;
  b.manifest.design_name = design.name;
  b.manifest.netlist_hash = serve::netlist_content_hash(design.netlist);
  b.manifest.feature_width = graphir::kNumBaseFeatures;
  b.manifest.feature_names = graphir::base_feature_names();
  b.manifest.probability_cycles = 24;
  b.manifest.probability_seed = seed ^ 0x9e3779b9ULL;
  b.stimulus = design.stimulus;
  b.standardizer.mean.assign(graphir::kNumBaseFeatures, 0.0);
  b.standardizer.stddev.assign(graphir::kNumBaseFeatures, 1.0);
  ml::GcnConfig cc = ml::GcnConfig::classifier();
  cc.hidden = {8};
  cc.seed = seed;
  b.classifier =
      std::make_unique<ml::GcnModel>(graphir::kNumBaseFeatures, cc);
  ml::GcnConfig rc = ml::GcnConfig::regressor();
  rc.hidden = {8};
  rc.seed = seed + 1;
  b.regressor = std::make_unique<ml::GcnModel>(graphir::kNumBaseFeatures, rc);
  return b;
}

struct DirectScore {
  std::vector<double> proba;
  std::vector<int> predicted;
  std::vector<double> score;
};

/// In-process replay of the scoring pipeline straight from the bundle
/// artifact — no engine, no cache, no worker pool.
DirectScore direct_score(const designs::Design& design,
                         const std::string& bundle_path) {
  const serve::ModelBundle bundle = serve::load_bundle_file(bundle_path);
  const netlist::Netlist& nl = design.netlist;
  const auto stats = sim::estimate_by_simulation(
      nl, bundle.stimulus, bundle.manifest.probability_seed,
      bundle.manifest.probability_cycles);
  const ml::Matrix x =
      bundle.standardizer.transform(graphir::extract_features(nl, stats));
  const graphir::CircuitGraph graph = graphir::build_graph(nl);

  DirectScore d;
  ml::GcnModel classifier = ml::clone_gcn(*bundle.classifier);
  classifier.set_adjacency(&graph.normalized_adjacency);
  const ml::Matrix out = classifier.forward(x, /*training=*/false);
  d.proba = ml::class1_probability(out);
  d.predicted = ml::predict_labels(out);
  ml::GcnModel regressor = ml::clone_gcn(*bundle.regressor);
  regressor.set_adjacency(&graph.normalized_adjacency);
  const ml::Matrix pred = regressor.forward(x, /*training=*/false);
  d.score.resize(static_cast<std::size_t>(pred.rows()));
  for (int i = 0; i < pred.rows(); ++i)
    d.score[static_cast<std::size_t>(i)] = static_cast<double>(pred(i, 0));
  return d;
}

std::string compare_scores(const serve::ScoreResult& r,
                           const DirectScore& ref, const char* leg) {
  if (r.proba != ref.proba)
    return std::string("serve-oracle: ") + leg +
           ": classifier probabilities differ from direct scoring";
  if (r.predicted != ref.predicted)
    return std::string("serve-oracle: ") + leg +
           ": predicted classes differ from direct scoring";
  if (r.score != ref.score)
    return std::string("serve-oracle: ") + leg +
           ": regressor scores differ from direct scoring";
  return {};
}

}  // namespace

std::string diff_serve_vs_pipeline(const designs::Design& design,
                                   const std::string& scratch_dir,
                                   std::uint64_t seed) {
  namespace fs = std::filesystem;
  fs::create_directories(scratch_dir);
  const std::string tag = std::to_string(seed);
  const std::string bundle_path =
      (fs::path(scratch_dir) / ("check_" + tag + ".fcm")).string();
  const std::string netlist_path =
      (fs::path(scratch_dir) / ("check_" + tag + ".v")).string();
  serve::save_bundle_file(make_check_bundle(design, seed), bundle_path);
  {
    std::ofstream os(netlist_path);
    netlist::write_verilog(design.netlist, os);
  }

  const DirectScore ref = direct_score(design, bundle_path);

  serve::ScoringEngine engine(
      {.threads = 2, .queue_capacity = 8, .cache_capacity = 2});
  const serve::ScoreResult r1 = engine.score(bundle_path, design);
  if (!r1.netlist_matched)
    return "serve-oracle: bundle reports netlist hash mismatch against the "
           "very netlist it was packed from";
  if (auto msg = compare_scores(r1, ref, "engine.score"); !msg.empty())
    return msg;

  // Second synchronous request must be served from the LRU cache and stay
  // bit-identical.
  const serve::ScoreResult r2 = engine.score(bundle_path, design);
  if (auto msg = compare_scores(r2, ref, "cached engine.score");
      !msg.empty())
    return msg;
  if (engine.metrics().cache_hits == 0)
    return "serve-oracle: repeated score of one bundle produced no cache "
           "hit";

  // Worker-pool path on the Verilog round-trip of the same netlist: the
  // writer/parser pair is exact, so results must still be bit-identical.
  std::vector<std::future<serve::ScoreResult>> futures;
  for (int i = 0; i < 2; ++i)
    futures.push_back(engine.submit(bundle_path, netlist_path));
  for (auto& fut : futures) {
    const serve::ScoreResult rs = fut.get();
    if (auto msg = compare_scores(rs, ref, "engine.submit on .v round-trip");
        !msg.empty())
      return msg;
  }
  return {};
}

}  // namespace fcrit::check
