// Randomized differential-oracle harness.
//
// run_checks() fuzzes the five oracles of src/check/differential.hpp over
// random sequential circuits (designs::build_random_circuit). Every trial
// derives its own seed from CheckConfig::seed via SplitMix64, so a failure
// report pins down a single reproducible (seed, circuit config, cycles)
// triple; the harness then greedily shrinks the failing circuit — fewer
// gates, flops, inputs, outputs, cycles — while the divergence reproduces,
// and attaches a Verilog dump of the minimized netlist.
//
// `fcrit check` is a thin CLI wrapper over this; tests/check_test.cpp runs
// the deterministic tranche and the deliberately-broken-shim self-tests.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/check/differential.hpp"
#include "src/check/scalar_sim.hpp"
#include "src/designs/random_circuit.hpp"

namespace fcrit::check {

struct CheckConfig {
  int trials = 50;
  std::uint64_t seed = 1;

  // Per-trial circuit size and workload length.
  int cycles = 48;
  int gates = 120;
  int flops = 12;
  int inputs = 8;
  int outputs = 6;

  /// Faults cross-checked per fault-oracle trial (strided over the full
  /// stuck-at universe). The fault oracle runs three simulations per fault,
  /// so this is the main knob on harness runtime.
  int max_faults = 16;

  /// Run the serve-vs-pipeline oracle on every k-th trial (it packs, saves
  /// and re-parses a model bundle, so it is the slowest oracle). 0 disables
  /// it, as does an empty scratch_dir.
  int serve_every = 10;
  std::string scratch_dir;

  bool shrink = true;        // minimize failing circuits before reporting
  bool dump_netlist = true;  // attach a Verilog dump to divergences

  /// Run the campaign-equivalence oracle (five run_all legs per trial, so
  /// the second-slowest oracle) on every k-th trial. 0 disables it.
  int campaign_every = 1;

  /// Run the static-prune oracle (certificate + proof verification, full
  /// unpruned reference campaign, pruned campaign) on every k-th trial.
  /// 0 disables it.
  int prune_every = 1;

  /// Plants a deliberate defect in the scalar reference so tests can prove
  /// the harness is able to fail. kNone for real checking.
  ScalarBug scalar_bug = ScalarBug::kNone;

  /// Plants a deliberate verdict corruption in one leg of the campaign
  /// oracle (see CampaignBug). kNone for real checking.
  CampaignBug campaign_bug = CampaignBug::kNone;

  /// Plants a deliberate defect in the static-prune oracle's triage
  /// result (see PruneBug). kNone for real checking.
  PruneBug prune_bug = PruneBug::kNone;
};

/// One reproducible failure: re-running the named oracle on
/// build_random_circuit(circuit) with `seed` and `cycles` diverges again.
struct Divergence {
  int trial = -1;
  /// "packed-vs-scalar" | "fault" | "campaign" | "static-prune" | "serve"
  std::string oracle;
  std::string message;
  std::uint64_t seed = 0;
  designs::RandomCircuitConfig circuit;
  int cycles = 0;
  int shrink_steps = 0;          // accepted reductions
  std::string netlist_verilog;   // dump of the (shrunk) failing netlist
  /// Lint findings on the shrunk circuit ("" when clean): a structural
  /// defect here usually explains the divergence faster than the dump.
  std::string lint_report;
};

struct CheckReport {
  int trials_run = 0;
  int packed_checks = 0;
  int fault_checks = 0;
  int campaign_checks = 0;
  int prune_checks = 0;
  int serve_checks = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
};

/// Run the harness. Stops at the first divergence (after shrinking it).
/// `log`, when non-null, receives one progress line per 10 trials and the
/// full failure report on divergence.
CheckReport run_checks(const CheckConfig& config, std::ostream* log = nullptr);

/// Render a divergence as a multi-line reproduction recipe.
std::string format_divergence(const Divergence& d);

}  // namespace fcrit::check
