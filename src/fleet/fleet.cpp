#include "src/fleet/fleet.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/obs/json.hpp"
#include "src/serve/bundle.hpp"
#include "src/util/timer.hpp"

namespace fcrit::fleet {

namespace {

std::uint64_t hash_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return serve::fnv1a64(buffer.str());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string_view to_string(FleetErrorCode code) {
  switch (code) {
    case FleetErrorCode::kBusy: return "busy";
    case FleetErrorCode::kNoShard: return "no-shard";
    case FleetErrorCode::kBundle: return "bundle";
  }
  return "unknown";
}

FleetError::FleetError(FleetErrorCode code, const std::string& message)
    : std::runtime_error(message), code_(code) {}

Fleet::Fleet(FleetConfig config)
    : config_(std::move(config)),
      traces_(config_.trace_ring),
      requests_(&registry_.counter("fleet.requests")),
      busy_rejections_(&registry_.counter("fleet.busy_rejections")),
      reroutes_(&registry_.counter("fleet.reroutes")),
      no_shard_(&registry_.counter("fleet.no_shard")),
      reloads_(&registry_.counter("fleet.reloads")),
      live_shards_gauge_(&registry_.gauge("fleet.live_shards")) {
  config_.shards = std::max(1, config_.shards);
  config_.threads_per_shard = std::max(1, config_.threads_per_shard);
  config_.queue_capacity = std::max<std::size_t>(1, config_.queue_capacity);
  if (config_.queue_high_water == 0 ||
      config_.queue_high_water > config_.queue_capacity)
    config_.queue_high_water = std::max<std::size_t>(
        1, config_.queue_capacity / 2);
  config_.retries = std::max(0, config_.retries);
  traces_.set_enabled(config_.tracing);

  for (int i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->name = "shard-" + std::to_string(i);
    serve::EngineConfig ec;
    ec.threads = config_.threads_per_shard;
    ec.queue_capacity = config_.queue_capacity;
    ec.cache_capacity = config_.cache_capacity;
    ec.batch_max = config_.batch_max;
    ec.before_score_hook = config_.before_score_hook;
    ec.traces = &traces_;
    shard->engine = std::make_unique<serve::ScoringEngine>(ec);
    shard->routed = &registry_.counter("fleet.routed." + shard->name);
    shard->request_ms =
        &registry_.histogram("fleet.request_ms." + shard->name);
    shards_.push_back(std::move(shard));
  }
  {
    util::MutexLock lock(ring_mutex_);
    for (const auto& shard : shards_) ring_.add(shard->name);
  }
  live_shards_gauge_->set(static_cast<std::int64_t>(shards_.size()));

  table_ = std::make_shared<const BundleTable>(
      scan_bundles(config_.bundle_dir));
  generation_.store(1);
}

Fleet::~Fleet() { shutdown(); }

BundleTable Fleet::scan_bundles(const std::string& dir) {
  namespace fs = std::filesystem;
  BundleTable table;
  if (dir.empty() || !fs::is_directory(dir)) return table;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".fcm")
      continue;
    BundleTable::Entry e;
    e.path = entry.path().string();
    e.content_hash = hash_file(e.path);
    table.bundles[entry.path().stem().string()] = std::move(e);
  }
  return table;
}

std::shared_ptr<const BundleTable> Fleet::table() const {
  util::MutexLock lock(table_mutex_);
  return table_;
}

std::string Fleet::resolve_bundle(const std::string& token) const {
  const auto snapshot = table();
  if (token.empty()) {
    if (snapshot->bundles.size() != 1)
      throw FleetError(FleetErrorCode::kBundle,
                       std::to_string(snapshot->bundles.size()) +
                           " bundles in directory; name one: "
                           "SCORE <bundle> <path>");
    return snapshot->bundles.begin()->second.path;
  }
  if (token.find('/') != std::string::npos) {
    if (std::filesystem::is_regular_file(token)) return token;
    throw FleetError(FleetErrorCode::kBundle, "no bundle file " + token);
  }
  std::string stem = token;
  if (stem.size() > 4 && stem.substr(stem.size() - 4) == ".fcm")
    stem.resize(stem.size() - 4);
  const auto it = snapshot->bundles.find(stem);
  if (it == snapshot->bundles.end())
    throw FleetError(FleetErrorCode::kBundle,
                     "no bundle '" + token + "' in " + config_.bundle_dir);
  return it->second.path;
}

std::string Fleet::route(const std::string& bundle_path) const {
  util::MutexLock lock(ring_mutex_);
  if (ring_.empty())
    throw FleetError(FleetErrorCode::kNoShard,
                     "no live shard (all killed or drained)");
  return ring_.route(bundle_path);
}

Fleet::Shard* Fleet::find_shard(const std::string& name) {
  for (const auto& shard : shards_)
    if (shard->name == name) return shard.get();
  return nullptr;
}

const Fleet::Shard* Fleet::find_shard(const std::string& name) const {
  for (const auto& shard : shards_)
    if (shard->name == name) return shard.get();
  return nullptr;
}

void Fleet::leave_ring(const std::string& name) {
  util::MutexLock lock(ring_mutex_);
  ring_.remove(name);
}

serve::ScoreResult Fleet::score(const std::string& bundle_path,
                                const std::string& target,
                                serve::ScoreOptions opts) {
  requests_->add();
  // Begin a trace unless the caller (FleetServer, or a client id= token
  // it forwarded) already did; either way this function owns completion.
  if (opts.trace_id == 0)
    opts.trace_id = traces_.begin(bundle_path, target);
  const std::uint64_t tid = opts.trace_id;
  try {
    for (int attempt = 0; attempt <= config_.retries; ++attempt) {
      const std::string owner = route(bundle_path);  // kNoShard when empty
      Shard* shard = find_shard(owner);
      if (shard == nullptr || !shard->alive.load()) {
        // Raced with a death the ring hasn't absorbed yet; absorb it now
        // and go around (does not consume a retry budget slot: the request
        // never reached an engine).
        leave_ring(owner);
        traces_.event(tid, "reroute", owner + " already dead");
        --attempt;
        continue;
      }
      // Admission control: shedding beats blocking. The submit deadline
      // below backstops the race where the queue fills between this check
      // and the push.
      if (shard->engine->queue_depth() >= config_.queue_high_water) {
        busy_rejections_->add();
        traces_.event(tid, "busy_shed",
                      owner + " over high-water mark");
        throw FleetError(
            FleetErrorCode::kBusy,
            owner + " over high-water mark (" +
                std::to_string(config_.queue_high_water) + " queued)");
      }
      try {
        traces_.set_shard(tid, owner);
        util::Timer timer;
        auto future = shard->engine->submit(bundle_path, target, opts,
                                            config_.admission_timeout);
        shard->routed->add();
        serve::ScoreResult result = future.get();
        shard->request_ms->observe(timer.millis());
        traces_.finish(tid, "ok");
        return result;
      } catch (const serve::EngineError& e) {
        switch (e.code()) {
          case serve::EngineErrorCode::kQueueTimeout:
            busy_rejections_->add();
            traces_.event(tid, "busy_shed", owner + " queue full");
            throw FleetError(FleetErrorCode::kBusy,
                             owner + " queue full: " + e.what());
          case serve::EngineErrorCode::kAborted:
          case serve::EngineErrorCode::kShutdown:
            // The shard died under us (or drained): make sure the ring
            // reflects that, then re-route this request to a survivor.
            leave_ring(owner);
            reroutes_->add();
            traces_.add_retry(tid);
            traces_.event(tid, "reroute",
                          owner + " " + std::string(to_string(e.code())));
            continue;
        }
        throw;
      }
    }
    no_shard_->add();
    throw FleetError(FleetErrorCode::kNoShard,
                     "no shard could take the request after " +
                         std::to_string(config_.retries + 1) + " attempts");
  } catch (const FleetError& e) {
    traces_.finish(tid, e.code() == FleetErrorCode::kBusy ? "shed"
                                                          : "no-shard",
                   e.what());
    throw;
  } catch (const std::exception& e) {
    traces_.finish(tid, "error", e.what());
    throw;
  } catch (...) {
    traces_.finish(tid, "error", "unknown error");
    throw;
  }
}

void Fleet::kill_shard(const std::string& name) {
  Shard* shard = find_shard(name);
  if (shard == nullptr || !shard->alive.exchange(false)) return;
  // Order matters: off the ring BEFORE the abort, so a request failing
  // with kAborted re-routes onto a ring that no longer contains the dead
  // shard.
  leave_ring(name);
  live_shards_gauge_->add(-1);
  shard->engine->abort();
}

void Fleet::drain_shard(const std::string& name) {
  Shard* shard = find_shard(name);
  if (shard == nullptr || !shard->alive.exchange(false)) return;
  leave_ring(name);
  live_shards_gauge_->add(-1);
  shard->engine->shutdown();  // queued jobs finish on the leaving shard
}

ReloadStats Fleet::reload() {
  util::MutexLock reload_lock(reload_mutex_);
  auto next = std::make_shared<const BundleTable>(
      scan_bundles(config_.bundle_dir));
  const auto prev = table();

  ReloadStats stats;
  stats.total = next->bundles.size();
  for (const auto& [name, entry] : next->bundles) {
    const auto it = prev->bundles.find(name);
    if (it == prev->bundles.end())
      ++stats.added;
    else if (it->second.content_hash != entry.content_hash)
      ++stats.changed;
  }
  for (const auto& [name, entry] : prev->bundles)
    if (next->bundles.find(name) == next->bundles.end()) ++stats.removed;

  {
    util::MutexLock lock(table_mutex_);
    table_ = next;
  }
  stats.generation = generation_.fetch_add(1) + 1;
  reloads_->add();

  // Prewarm new/changed bundles on their owner shards so the first
  // request after the swap hits a warm cache instead of paying the
  // parse. Best-effort: an unreadable bundle stays a per-request error.
  for (const auto& [name, entry] : next->bundles) {
    const auto it = prev->bundles.find(name);
    if (it != prev->bundles.end() &&
        it->second.content_hash == entry.content_hash)
      continue;
    try {
      Shard* shard = find_shard(route(entry.path));
      if (shard != nullptr && shard->alive.load())
        shard->engine->prewarm(entry.path);
    } catch (const std::exception&) {
    }
  }
  return stats;
}

std::vector<std::pair<std::string, const obs::Registry*>> Fleet::registries()
    const {
  std::vector<std::pair<std::string, const obs::Registry*>> out;
  out.emplace_back("fleet", &registry_);
  for (const auto& shard : shards_)
    out.emplace_back(shard->name, &shard->engine->metrics_registry());
  return out;
}

std::uint64_t Fleet::total_requests() const { return requests_->value(); }

std::size_t Fleet::live_shards() const {
  std::size_t n = 0;
  for (const auto& shard : shards_)
    if (shard->alive.load()) ++n;
  return n;
}

std::vector<ShardStatus> Fleet::shard_status() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStatus s;
    s.name = shard->name;
    s.alive = shard->alive.load();
    s.queue_depth = shard->engine->queue_depth();
    s.routed = shard->routed->value();
    const serve::MetricsSnapshot m = shard->engine->metrics();
    s.completed = m.completed;
    s.errors = m.errors;
    out.push_back(std::move(s));
  }
  return out;
}

std::string Fleet::shards_json() const {
  std::string out = "{";
  out += "\"generation\":" + std::to_string(generation_.load());
  out += ",\"queue_high_water\":" + std::to_string(config_.queue_high_water);
  out += ",\"live\":" + std::to_string(live_shards());
  out += ",\"shards\":[";
  bool first = true;
  for (const ShardStatus& s : shard_status()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(s.name) + "\"";
    out += ",\"alive\":" + std::string(s.alive ? "true" : "false");
    out += ",\"queue_depth\":" + std::to_string(s.queue_depth);
    out += ",\"routed\":" + std::to_string(s.routed);
    out += ",\"completed\":" + std::to_string(s.completed);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Fleet::metrics_json() const {
  std::string out = "{\"fleet\":{";
  out += "\"generation\":" + std::to_string(generation_.load());
  out += ",\"live_shards\":" + std::to_string(live_shards());
  out += ",\"requests\":" + std::to_string(requests_->value());
  out += ",\"busy_rejections\":" + std::to_string(busy_rejections_->value());
  out += ",\"reroutes\":" + std::to_string(reroutes_->value());
  out += ",\"no_shard\":" + std::to_string(no_shard_->value());
  out += ",\"reloads\":" + std::to_string(reloads_->value());
  out += "},\"shards\":{";
  bool first = true;
  for (const auto& shard : shards_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(shard->name) + "\":{";
    out += "\"alive\":" + std::string(shard->alive.load() ? "true" : "false");
    out += ",\"routed\":" + std::to_string(shard->routed->value());
    out += ",\"request_ms\":" +
           obs::histogram_json(shard->request_ms->snapshot());
    out += ",\"engine\":" + shard->engine->metrics_json();
    out += "}";
  }
  out += "}}";
  return out;
}

void Fleet::shutdown() {
  if (stopped_.exchange(true)) return;
  {
    util::MutexLock lock(ring_mutex_);
    while (!ring_.empty()) ring_.remove(ring_.shards().front());
  }
  for (const auto& shard : shards_) {
    shard->alive.store(false);
    shard->engine->shutdown();
  }
  live_shards_gauge_->set(0);
}

}  // namespace fcrit::fleet
