// Consistent-hash ring routing bundle IDs to fleet shards.
//
// Every shard contributes `replicas` virtual nodes at fnv1a64("<shard>#<i>")
// positions; a key routes to the first virtual node clockwise from
// fnv1a64(key). Two properties the fleet (and its tests) rely on:
//
//   Determinism: the ring is a pure function of the CURRENT shard set —
//   add/remove rebuild it from the sorted shard names, so placement never
//   depends on the order shards joined or died. Two routers holding the
//   same shard set route every key identically.
//
//   Bounded movement: removing a shard only re-homes the keys that lived
//   on it (its successors absorb them); adding one only steals the keys
//   landing on its new virtual nodes. Everything else stays put — the
//   property that makes shard death cheap compared to `hash % N`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fcrit::fleet {

class HashRing {
 public:
  /// `replicas` = virtual nodes per shard; more replicas → smoother key
  /// distribution at O(replicas · shards) ring size.
  explicit HashRing(int replicas = 64);

  void add(const std::string& shard);
  void remove(const std::string& shard);
  bool contains(const std::string& shard) const;

  std::size_t size() const { return shards_.size(); }
  bool empty() const { return shards_.empty(); }

  /// The shards in their canonical (sorted) order.
  const std::vector<std::string>& shards() const { return shards_; }

  /// The owning shard for `key`; throws std::runtime_error on an empty
  /// ring (no shard left to own anything).
  const std::string& route(const std::string& key) const;

 private:
  void rebuild();

  int replicas_;
  std::vector<std::string> shards_;            // sorted, unique
  std::map<std::uint64_t, std::string> ring_;  // position -> shard
};

}  // namespace fcrit::fleet
