#include "src/fleet/fleet_server.hpp"

#include <sstream>

#include "src/obs/request_trace.hpp"
#include "src/serve/server.hpp"  // parse_score_request, format_score_response
#include "src/util/text.hpp"

namespace fcrit::fleet {

FleetServer::FleetServer(Fleet& fleet, FleetServerConfig config)
    : serve::LineServer(config.port), fleet_(fleet), config_(config) {
  set_trace_collector(&fleet_.traces());
}

FleetServer::~FleetServer() {
  // Drain connections while fleet_ is still valid (handle_line runs on
  // connection threads).
  stop();
}

std::string FleetServer::handle_line(const std::string& line) {
  const std::vector<std::string> tokens = util::split_ws(line);
  if (tokens.empty()) return serve::error_response("empty request");
  const std::string& verb = tokens[0];

  if (verb == "QUIT") return "BYE\n.\n";

  if (verb == "METRICS") {
    if (tokens.size() > 1 && tokens[1] == "PROM") {
      std::vector<obs::PromSource> sources;
      for (const auto& [name, registry] : fleet_.registries())
        sources.push_back(obs::PromSource{
            name == "fleet" ? "" : "shard=\"" + name + "\"", registry});
      return prom_response(sources);
    }
    return metrics_response(fleet_.metrics_json());
  }

  if (verb == "TRACE")
    return trace_response({tokens.begin() + 1, tokens.end()});

  if (verb == "SHARDS") return fleet_.shards_json() + "\n.\n";

  if (verb == "RELOAD") {
    try {
      const ReloadStats s = fleet_.reload();
      std::ostringstream os;
      os << "OK generation=" << s.generation << " total=" << s.total
         << " added=" << s.added << " removed=" << s.removed
         << " changed=" << s.changed << "\n.\n";
      return os.str();
    } catch (const std::exception& e) {
      return serve::error_response(e.what());
    }
  }

  if (verb == "STATS") {
    // Aggregate over shards so existing STATS consumers keep working
    // against a fleet endpoint.
    std::uint64_t completed = 0, errors = 0;
    for (const auto& shard : fleet_.shard_status()) {
      completed += shard.completed;
      errors += shard.errors;
    }
    std::ostringstream os;
    os << "OK requests=" << fleet_.total_requests()
       << " completed=" << completed << " errors=" << errors
       << " shards=" << fleet_.live_shards()
       << " generation=" << fleet_.generation()
       << " high_water=" << fleet_.config().queue_high_water << "\n.\n";
    return os.str();
  }

  if (verb == "SCORE") {
    try {
      const serve::ScoreRequest req = serve::parse_score_request(
          {tokens.begin() + 1, tokens.end()}, config_.default_top);
      const std::string bundle_path = fleet_.resolve_bundle(req.bundle_token);
      serve::ScoreOptions opts;
      // Begin here (not in Fleet::score) only to honor a client-supplied
      // id= token; Fleet::score owns every trace's completion either way.
      opts.trace_id =
          fleet_.traces().begin(bundle_path, req.target, req.trace_id);
      const serve::ScoreResult r = fleet_.score(bundle_path, req.target, opts);
      return serve::format_score_response(r, req.top);
    } catch (const FleetError& e) {
      if (e.code() == FleetErrorCode::kBusy)
        return std::string("BUSY ") + e.what() + "\n.\n";
      return serve::error_response(e.what());
    } catch (const std::exception& e) {
      return serve::error_response(e.what());
    }
  }

  return serve::error_response(
      "unknown command '" + verb +
      "' (SCORE, STATS, METRICS, TRACE, SHARDS, RELOAD, QUIT)");
}

}  // namespace fcrit::fleet
