#include "src/fleet/hash_ring.hpp"

#include <algorithm>
#include <stdexcept>

#include "src/serve/bundle.hpp"  // fnv1a64

namespace fcrit::fleet {

namespace {

/// Ring position of a name: fnv1a64 run through the splitmix64 finalizer.
/// Plain FNV-1a avalanches poorly in the high bits for short, similar
/// strings ("shard-0#17", "sdram_ctrl.v42.fcm"), which clumps virtual
/// nodes and skews shard load badly; the finalizer restores uniformity.
std::uint64_t position(const std::string& name) {
  std::uint64_t x = serve::fnv1a64(name);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

HashRing::HashRing(int replicas) : replicas_(std::max(1, replicas)) {}

void HashRing::add(const std::string& shard) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it != shards_.end() && *it == shard) return;
  shards_.insert(it, shard);
  rebuild();
}

void HashRing::remove(const std::string& shard) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end() || *it != shard) return;
  shards_.erase(it);
  rebuild();
}

bool HashRing::contains(const std::string& shard) const {
  return std::binary_search(shards_.begin(), shards_.end(), shard);
}

void HashRing::rebuild() {
  // Rebuild from the sorted shard set instead of editing incrementally:
  // a position collision between two shards' virtual nodes then resolves
  // by canonical order, never by join order, which is what makes two
  // routers with the same shard set route identically.
  ring_.clear();
  for (const std::string& shard : shards_)
    for (int i = 0; i < replicas_; ++i)
      ring_.emplace(position(shard + "#" + std::to_string(i)), shard);
}

const std::string& HashRing::route(const std::string& key) const {
  if (ring_.empty())
    throw std::runtime_error("hash ring is empty: no live shard");
  auto it = ring_.lower_bound(position(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap past the top
  return it->second;
}

}  // namespace fcrit::fleet
