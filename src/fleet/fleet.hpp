// The fleet tier: N in-process ScoringEngine shards behind one
// consistent-hash router, with admission control, shard death/drain
// rebalancing and hot bundle reload. fleet::FleetServer puts the line
// protocol in front of this; everything here is protocol-agnostic.
//
// Routing: a bundle's resolved path is the ring key, so every request
// for one bundle lands on one shard — that shard's BundleCache holds the
// parse, its workers' thread-local clone caches stay hot, and queued
// same-bundle requests coalesce into single batched forwards
// (EngineConfig::batch_max). When a shard dies (kill_shard / abort) or
// drains, it leaves the ring first; re-issued requests re-route to the
// survivors, and score() retries routed-to-dead-shard failures
// (EngineError kAborted/kShutdown) up to FleetConfig::retries times —
// "no client-visible error after one retry".
//
// Admission control: a request whose owner shard already holds
// queue_high_water queued jobs is rejected with FleetError(kBusy)
// (wire: "BUSY ...") instead of blocking the connection; the submit
// deadline (admission_timeout_ms) is the backstop for races past that
// check. Queue depth stays bounded by construction.
//
// Hot reload: the name→bundle view is an immutable BundleTable snapshot
// swapped atomically by reload() (SIGHUP / RELOAD). In-flight requests
// keep scoring the bundle version they resolved — shared_ptr pins inside
// the engines — so a reload drops nothing; new requests see the new
// table, whose changed content hashes miss the caches and re-parse.
// reload() prewarms each bundle on its owner shard so the first request
// after a swap does not pay the parse.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/fleet/hash_ring.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/request_trace.hpp"
#include "src/serve/engine.hpp"
#include "src/util/thread_annotations.hpp"

namespace fcrit::fleet {

enum class FleetErrorCode {
  kBusy,     // owner shard over the high-water mark (wire: BUSY)
  kNoShard,  // every shard dead/drained — nothing left to route to
  kBundle,   // the bundle token resolves to nothing in the current table
};

std::string_view to_string(FleetErrorCode code);

class FleetError : public std::runtime_error {
 public:
  FleetError(FleetErrorCode code, const std::string& message);
  FleetErrorCode code() const { return code_; }

 private:
  FleetErrorCode code_;
};

struct FleetConfig {
  std::string bundle_dir;
  int shards = 2;
  int threads_per_shard = 2;
  std::size_t queue_capacity = 64;
  /// Admission control: reject (BUSY) requests whose owner shard already
  /// queues this many jobs. Must be <= queue_capacity to ever fire before
  /// submit blocks; 0 derives capacity/2.
  std::size_t queue_high_water = 0;
  std::size_t cache_capacity = 8;
  /// Cross-connection coalescing width per shard worker (see
  /// serve::EngineConfig::batch_max); 1 disables batching.
  std::size_t batch_max = 8;
  /// Backstop deadline for the submit that races past the high-water
  /// check; expiry surfaces as FleetError(kBusy).
  std::chrono::milliseconds admission_timeout{2000};
  /// Transparent re-route attempts after a routed-to-dead-shard failure.
  int retries = 1;
  /// Request tracing (the fleet-owned RequestTraceCollector all shards
  /// share). Off costs one relaxed atomic load per request.
  bool tracing = true;
  /// Completed traces kept for TRACE <id> / TRACE LAST <n>.
  std::size_t trace_ring = 256;
  /// Test-only: forwarded to every shard's EngineConfig.
  std::function<void(const std::string&)> before_score_hook;
};

/// One immutable name -> bundle view; requests resolve against whichever
/// snapshot was current when they arrived.
struct BundleTable {
  struct Entry {
    std::string path;
    std::uint64_t content_hash = 0;  // fnv1a64 of the file bytes
  };
  std::map<std::string, Entry> bundles;  // key: file stem ("sdram_ctrl")
};

/// What a reload() changed, for the RELOAD response and logs.
struct ReloadStats {
  std::uint64_t generation = 0;  // table generation now live
  std::size_t total = 0;         // bundles in the new table
  std::size_t added = 0;
  std::size_t removed = 0;
  std::size_t changed = 0;  // same name, different content hash
};

struct ShardStatus {
  std::string name;
  bool alive = false;
  std::size_t queue_depth = 0;
  std::uint64_t routed = 0;  // requests this fleet routed to the shard
  std::uint64_t completed = 0;
  std::uint64_t errors = 0;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  const FleetConfig& config() const { return config_; }

  /// Resolve a SCORE bundle token against the CURRENT table snapshot:
  /// "" = the table's only bundle, a '/'-containing token = literal path,
  /// anything else = table lookup (".fcm" stripped). Throws
  /// FleetError(kBundle) when nothing matches.
  std::string resolve_bundle(const std::string& token) const;

  /// The shard that owns `bundle_path` on the current ring; throws
  /// FleetError(kNoShard) when the ring is empty.
  std::string route(const std::string& bundle_path) const;

  /// Route + admission-check + submit + (on routed-to-dead-shard failure)
  /// re-route and retry. Throws FleetError (kBusy/kNoShard) for fleet
  /// conditions; scoring errors (BundleError, lint::LintError, ...)
  /// pass through.
  ///
  /// Tracing: when opts.trace_id is 0 and tracing is on, a trace is begun
  /// here; a caller-begun id is used as-is. Either way score() owns the
  /// trace's completion — it records reroute/busy_shed events and the
  /// owning shard, and finishes with verdict ok/error/shed/no-shard on
  /// every exit path. Callers must NOT finish the trace themselves.
  serve::ScoreResult score(const std::string& bundle_path,
                           const std::string& target,
                           serve::ScoreOptions opts = {});

  /// Abrupt shard death: leaves the ring first, then abort()s the engine
  /// so queued jobs fail fast (kAborted) and their callers re-route.
  /// Requests already on a worker still finish. No-op on unknown names.
  void kill_shard(const std::string& name);

  /// Graceful removal: leaves the ring, then drains the engine (queued
  /// jobs finish on the leaving shard).
  void drain_shard(const std::string& name);

  /// Rescan bundle_dir, swap in the new table, prewarm new/changed
  /// bundles on their owner shards. Thread-safe; concurrent reloads
  /// serialize.
  ReloadStats reload();

  std::uint64_t generation() const { return generation_.load(); }
  std::uint64_t total_requests() const;
  std::size_t live_shards() const;
  std::vector<ShardStatus> shard_status() const;

  /// SHARDS payload: {"generation":..,"high_water":..,"shards":[...]}.
  std::string shards_json() const;

  /// {"fleet":{router counters},"shards":{"<name>":{engine metrics}}}.
  std::string metrics_json() const;

  const obs::Registry& metrics_registry() const { return registry_; }

  /// The fleet-wide request-trace collector (shared by every shard's
  /// engine; backs the TRACE verb and the access log).
  obs::RequestTraceCollector& traces() { return traces_; }
  const obs::RequestTraceCollector& traces() const { return traces_; }

  /// Every registry in the tier, named: ("fleet", router registry) plus
  /// one ("<shard-name>", engine registry) per shard. The substrate for
  /// METRICS PROM rendering and the telemetry exporter's sources.
  std::vector<std::pair<std::string, const obs::Registry*>> registries() const;

  /// Drain every live shard and stop. Idempotent; the destructor calls it.
  void shutdown();

 private:
  struct Shard {
    std::string name;
    std::unique_ptr<serve::ScoringEngine> engine;
    std::atomic<bool> alive{true};
    obs::Counter* routed = nullptr;      // fleet.routed.<name>
    obs::Histogram* request_ms = nullptr;  // fleet.request_ms.<name>
  };

  std::shared_ptr<const BundleTable> table() const;
  static BundleTable scan_bundles(const std::string& dir);
  Shard* find_shard(const std::string& name);
  const Shard* find_shard(const std::string& name) const;
  /// Take `name` off the ring (idempotent) so the next route() skips it.
  void leave_ring(const std::string& name);

  FleetConfig config_;
  obs::Registry registry_;
  // Declared before shards_: their EngineConfigs hold a pointer into it,
  // so it must outlive (construct before, destruct after) the engines.
  obs::RequestTraceCollector traces_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable util::Mutex ring_mutex_;
  HashRing ring_ GUARDED_BY(ring_mutex_);

  mutable util::Mutex table_mutex_;  // guards the snapshot pointer swap
  std::shared_ptr<const BundleTable> table_ GUARDED_BY(table_mutex_);
  util::Mutex reload_mutex_;  // serializes reload() scans
  std::atomic<std::uint64_t> generation_{0};

  std::atomic<bool> stopped_{false};

  obs::Counter* requests_;
  obs::Counter* busy_rejections_;
  obs::Counter* reroutes_;
  obs::Counter* no_shard_;
  obs::Counter* reloads_;
  obs::Gauge* live_shards_gauge_;
};

}  // namespace fcrit::fleet
