// The `fcrit fleet` daemon: the serve line protocol (src/serve/
// line_server.hpp) in front of a Fleet router instead of a single
// engine. Protocol deltas vs `fcrit serve` (docs/SERVING.md):
//
//   SCORE [<bundle>] <netlist-path> [<top-n>] [id=<n>]
//       Same grammar and OK response; the bundle's owner shard computes
//       it. An over-high-water shard replies "BUSY <detail>" (terminator
//       included) instead of queueing — clients back off and retry.
//   SHARDS
//       One JSON line: ring generation, high-water mark, per-shard
//       alive/queue_depth/routed/completed/errors.
//   RELOAD
//       Rescans the bundle directory, swaps the table snapshot, prewarms
//       new/changed bundles. Replies "OK generation=G total=N added=A
//       removed=R changed=C". SIGHUP on the CLI daemon does the same.
//   STATS / METRICS / TRACE / QUIT
//       As in serve; METRICS returns the shared "server" object plus the
//       fleet's nested JSON (router counters + per-shard engine
//       snapshots), METRICS PROM labels each shard's samples with
//       shard="shard-N", TRACE reads the fleet's request-trace ring.
#pragma once

#include <cstdint>

#include "src/fleet/fleet.hpp"
#include "src/serve/line_server.hpp"

namespace fcrit::fleet {

struct FleetServerConfig {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (see port()).
  std::uint16_t port = 7343;
  int default_top = 10;
};

class FleetServer : public serve::LineServer {
 public:
  FleetServer(Fleet& fleet, FleetServerConfig config);
  ~FleetServer() override;

  std::string handle_line(const std::string& line) override;

 private:
  Fleet& fleet_;
  FleetServerConfig config_;
};

}  // namespace fcrit::fleet
