// Continuous telemetry export: a background thread that snapshots a set
// of named registries every `interval` seconds and appends one JSONL line
// per tick to a file.
//
// Line shape:
//   {"seq":N,"mono_ms":M,"wall_unix_ms":W,"interval_seconds":S,
//    "registries":{"<name>":{counters,gauges,histograms},...}}
// `seq` and `mono_ms` are relative to exporter start on a monotonic
// clock — after a daemon restart both reset near zero while wall_unix_ms
// keeps climbing, which is how a consumer detects the discontinuity and
// avoids computing negative counter deltas across it.
//
// The exporter never locks scoring workers: Registry::snapshot() only
// takes the registry's name-map mutex (recording threads never do), and
// all file I/O happens on the exporter thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/util/thread_annotations.hpp"

namespace fcrit::obs {

class Registry;

class TelemetryExporter {
 public:
  /// A telemetry source: name under "registries" -> producer of one JSON
  /// object. std::function (not Registry*) so composite sources — the
  /// fleet's nested shard view — can plug in too.
  using Source = std::pair<std::string, std::function<std::string()>>;

  struct Status {
    bool running = false;
    double interval_seconds = 0.0;
    std::uint64_t snapshots = 0;   // lines written since start
    double last_lag_ms = 0.0;      // duration of the last snapshot+write
    double last_mono_ms = 0.0;     // mono_ms stamped on the last line
  };

  TelemetryExporter();
  ~TelemetryExporter();

  TelemetryExporter(const TelemetryExporter&) = delete;
  TelemetryExporter& operator=(const TelemetryExporter&) = delete;

  void add_source(std::string name, std::function<std::string()> fn);
  /// Convenience: snapshot `registry` via Registry::to_json.
  void add_registry(std::string name, const Registry& registry);

  /// Open `path` for append and start ticking every `interval_seconds`.
  /// interval_seconds <= 0 opens the file but spawns no thread — the
  /// deterministic mode tests use, driving ticks via snapshot_now().
  /// Returns false (and does not start) if the file cannot be opened or
  /// the exporter is already running.
  bool start(const std::string& path, double interval_seconds);
  /// Stop the thread and close the file; the file ends on a complete line.
  void stop();
  bool running() const;

  /// Write one snapshot line immediately (also what the tick loop calls).
  void snapshot_now();

  Status status() const;

 private:
  void run(double interval_seconds);

  mutable util::Mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ GUARDED_BY(mutex_) = false;
  bool running_ GUARDED_BY(mutex_) = false;
  std::thread thread_;  // started/joined from one controller thread
  std::vector<Source> sources_ GUARDED_BY(mutex_);
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file_ GUARDED_BY(mutex_);

  std::chrono::steady_clock::time_point t0_;  // written once, before ticks
  double interval_seconds_ GUARDED_BY(mutex_) = 0.0;
  std::atomic<std::uint64_t> snapshots_{0};
  std::atomic<double> last_lag_ms_{0.0};
  std::atomic<double> last_mono_ms_{0.0};
};

}  // namespace fcrit::obs
