#include "src/obs/trace.hpp"

#include <atomic>
#include <fstream>
#include <ostream>

#include "src/obs/json.hpp"

namespace fcrit::obs {

namespace {

/// Small dense thread ids: stabler across runs than hashed
/// std::thread::id, and they render compactly in the trace viewer.
int current_tid() {
  static std::atomic<int> next{0};
  thread_local const int tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer* tracer = new Tracer();  // never destroyed: spans may close
  return *tracer;                        // during static teardown
}

void Tracer::start() {
  {
    util::MutexLock lock(mutex_);
    events_.clear();
  }
  epoch_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::record(TraceEvent event) {
  util::MutexLock lock(mutex_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  util::MutexLock lock(mutex_);
  return events_;
}

void Tracer::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = this->events();
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_string(e.name)
       << ",\"cat\":\"fcrit\",\"ph\":\"X\",\"ts\":" << e.ts_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

Span::Span(std::string name) : name_(std::move(name)) {
  if (!Tracer::instance().enabled()) return;
  active_ = true;
  start_ = std::chrono::steady_clock::now();
}

void Span::close() {
  if (!active_) return;
  active_ = false;
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;  // stopped mid-span: drop it
  const auto end = std::chrono::steady_clock::now();
  using us = std::chrono::microseconds;
  TraceEvent e;
  e.name = std::move(name_);
  e.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<us>(start_ - tracer.epoch()).count());
  e.dur_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<us>(end - start_).count());
  e.tid = current_tid();
  tracer.record(std::move(e));
}

}  // namespace fcrit::obs
