#include "src/obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace fcrit::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_string(std::string_view s) {
  return "\"" + json_escape(s) + "\"";
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

namespace {

/// Cursor over the document; every parse_* consumes exactly one construct
/// or returns false with the position unspecified.
struct Checker {
  std::string_view s;
  std::size_t pos = 0;

  bool eof() const { return pos >= s.size(); }
  char peek() const { return s[pos]; }

  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                      s[pos] == '\r'))
      ++pos;
  }

  bool literal(std::string_view word) {
    if (s.substr(pos, word.size()) != word) return false;
    pos += word.size();
    return true;
  }

  bool parse_string() {
    if (eof() || s[pos] != '"') return false;
    ++pos;
    while (!eof()) {
      const char c = s[pos];
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c == '\\') {
        ++pos;
        if (eof()) return false;
        const char e = s[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + static_cast<std::size_t>(i) >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(s[pos + i])))
              return false;
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos;
    }
    return false;  // unterminated
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(s[pos])))
      return false;
    while (!eof() && std::isdigit(static_cast<unsigned char>(s[pos]))) ++pos;
    return true;
  }

  bool parse_number() {
    if (!eof() && s[pos] == '-') ++pos;
    if (eof()) return false;
    if (s[pos] == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && s[pos] == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!eof() && (s[pos] == 'e' || s[pos] == 'E')) {
      ++pos;
      if (!eof() && (s[pos] == '+' || s[pos] == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool parse_value(int depth) {
    if (depth > 256) return false;  // runaway nesting
    skip_ws();
    if (eof()) return false;
    const char c = peek();
    if (c == '"') return parse_string();
    if (c == '{') return parse_object(depth + 1);
    if (c == '[') return parse_array(depth + 1);
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    return parse_number();
  }

  bool parse_object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (eof() || s[pos] != ':') return false;
      ++pos;
      if (!parse_value(depth)) return false;
      skip_ws();
      if (eof()) return false;
      if (s[pos] == ',') {
        ++pos;
        continue;
      }
      if (s[pos] == '}') {
        ++pos;
        return true;
      }
      return false;
    }
  }

  bool parse_array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!parse_value(depth)) return false;
      skip_ws();
      if (eof()) return false;
      if (s[pos] == ',') {
        ++pos;
        continue;
      }
      if (s[pos] == ']') {
        ++pos;
        return true;
      }
      return false;
    }
  }
};

}  // namespace

bool json_valid(std::string_view text) {
  Checker c{text};
  if (!c.parse_value(0)) return false;
  c.skip_ws();
  return c.eof();
}

}  // namespace fcrit::obs
