// Prometheus text exposition (format 0.0.4) over RegistrySnapshot.
//
// Mapping, chosen so a stock Prometheus scrape of METRICS PROM just works:
//   Counter    -> `<prefix><name>_total` (counter)
//   Gauge      -> `<prefix><name>` plus `<prefix><name>_high_water` (gauge)
//   Histogram  -> cumulative `<prefix><name>_bucket{le="..."}` over the
//                 1-2-5 ladder, a `+Inf` bucket equal to _count, plus
//                 `_sum` and `_count`
// Instrument names are sanitized ('.', '-' and anything else outside
// [a-zA-Z0-9_] become '_'). Multiple sources render under per-source
// constant labels (e.g. shard="shard-0"); families shared across sources
// still emit exactly one # TYPE line, as the format requires.
#pragma once

#include <string>
#include <vector>

#include "src/obs/metrics.hpp"

namespace fcrit::obs {

struct PromSource {
  /// Constant labels applied to every sample from this registry, already
  /// in exposition syntax without braces: `shard="shard-0"`. Empty for
  /// none.
  std::string labels;
  const Registry* registry = nullptr;
};

/// `metric_name{label="v"}`-safe version of an instrument name.
std::string prom_sanitize(const std::string& name);

std::string to_prometheus(const std::vector<PromSource>& sources,
                          const std::string& prefix = "fcrit_");

/// Single-registry convenience.
std::string to_prometheus(const Registry& registry,
                          const std::string& prefix = "fcrit_");

}  // namespace fcrit::obs
