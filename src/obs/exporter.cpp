#include "src/obs/exporter.hpp"

#include "src/obs/json.hpp"
#include "src/obs/log.hpp"
#include "src/obs/metrics.hpp"

namespace fcrit::obs {

namespace {

std::uint64_t wall_unix_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

TelemetryExporter::TelemetryExporter() : file_(nullptr, &std::fclose) {}

TelemetryExporter::~TelemetryExporter() { stop(); }

void TelemetryExporter::add_source(std::string name,
                                   std::function<std::string()> fn) {
  util::MutexLock lock(mutex_);
  sources_.emplace_back(std::move(name), std::move(fn));
}

void TelemetryExporter::add_registry(std::string name,
                                     const Registry& registry) {
  add_source(std::move(name), [&registry] { return registry.to_json(); });
}

bool TelemetryExporter::start(const std::string& path,
                              double interval_seconds) {
  util::MutexLock lock(mutex_);
  if (running_ || file_) return false;
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) {
    logf(LogLevel::kWarn, "cannot open telemetry output %s", path.c_str());
    return false;
  }
  file_.reset(f);
  t0_ = std::chrono::steady_clock::now();
  interval_seconds_ = interval_seconds > 0 ? interval_seconds : 0.0;
  if (interval_seconds <= 0) return true;  // manual mode: no thread
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this, interval_seconds] { run(interval_seconds); });
  return true;
}

void TelemetryExporter::stop() {
  {
    util::MutexLock lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  util::MutexLock lock(mutex_);
  running_ = false;
  file_.reset();
}

bool TelemetryExporter::running() const {
  util::MutexLock lock(mutex_);
  return running_;
}

void TelemetryExporter::run(double interval_seconds) {
  const auto interval = std::chrono::duration<double>(interval_seconds);
  for (;;) {
    {
      util::MutexLock lock(mutex_);
      // Explicit predicate loop (not a wait lambda): the thread-safety
      // analysis can only see guarded reads made directly in this scope.
      const auto deadline = std::chrono::steady_clock::now() + interval;
      while (!stop_requested_) {
        if (cv_.wait_until(lock.native(), deadline) ==
            std::cv_status::timeout)
          break;
      }
      if (stop_requested_) return;
    }
    snapshot_now();
  }
}

void TelemetryExporter::snapshot_now() {
  const auto tick_start = std::chrono::steady_clock::now();

  // Copy the source list so producers run outside the exporter mutex;
  // each producer only touches its own registry's name-map mutex.
  std::vector<Source> sources;
  double interval_seconds = 0.0;
  {
    util::MutexLock lock(mutex_);
    if (!file_) return;
    sources = sources_;
    interval_seconds = interval_seconds_;
  }

  const double mono_ms =
      std::chrono::duration<double, std::milli>(tick_start - t0_).count();
  std::string line = "{\"seq\":" +
                     std::to_string(snapshots_.load(std::memory_order_relaxed) +
                                    1);
  line += ",\"mono_ms\":" + json_number(mono_ms);
  line += ",\"wall_unix_ms\":" + std::to_string(wall_unix_ms());
  line += ",\"interval_seconds\":" + json_number(interval_seconds);
  line += ",\"registries\":{";
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (i != 0) line += ",";
    line += json_string(sources[i].first) + ":" + sources[i].second();
  }
  line += "}}\n";

  {
    util::MutexLock lock(mutex_);
    if (!file_) return;
    std::fwrite(line.data(), 1, line.size(), file_.get());
    std::fflush(file_.get());
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  last_mono_ms_.store(mono_ms, std::memory_order_relaxed);
  last_lag_ms_.store(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - tick_start)
                         .count(),
                     std::memory_order_relaxed);
}

TelemetryExporter::Status TelemetryExporter::status() const {
  Status s;
  {
    util::MutexLock lock(mutex_);
    s.running = running_;
    s.interval_seconds = interval_seconds_;
  }
  s.snapshots = snapshots_.load(std::memory_order_relaxed);
  s.last_lag_ms = last_lag_ms_.load(std::memory_order_relaxed);
  s.last_mono_ms = last_mono_ms_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace fcrit::obs
