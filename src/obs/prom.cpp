#include "src/obs/prom.hpp"

#include <cstdio>
#include <map>

namespace fcrit::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return std::string(buf);
}

std::string sample_labels(const std::string& constant,
                          const std::string& extra = "") {
  if (constant.empty() && extra.empty()) return "";
  std::string out = "{";
  out += constant;
  if (!constant.empty() && !extra.empty()) out += ",";
  out += extra;
  out += "}";
  return out;
}

struct Family {
  const char* type = "counter";
  std::vector<std::string> samples;
};

}  // namespace

std::string prom_sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(0, 1, '_');
  return out;
}

std::string to_prometheus(const std::vector<PromSource>& sources,
                          const std::string& prefix) {
  // Group samples by exposed family name first: the exposition format
  // demands exactly one # TYPE line per family even when several sources
  // (shards) contribute samples to it.
  std::map<std::string, Family> families;
  for (const PromSource& src : sources) {
    if (!src.registry) continue;
    const RegistrySnapshot snap = src.registry->snapshot();

    for (const auto& [name, value] : snap.counters) {
      const std::string fam = prefix + prom_sanitize(name) + "_total";
      Family& f = families[fam];
      f.type = "counter";
      f.samples.push_back(fam + sample_labels(src.labels) + " " +
                          std::to_string(value));
    }

    for (const auto& [name, g] : snap.gauges) {
      const std::string base = prefix + prom_sanitize(name);
      Family& f = families[base];
      f.type = "gauge";
      f.samples.push_back(base + sample_labels(src.labels) + " " +
                          std::to_string(g.value));
      const std::string hw = base + "_high_water";
      Family& fh = families[hw];
      fh.type = "gauge";
      fh.samples.push_back(hw + sample_labels(src.labels) + " " +
                           std::to_string(g.high_water));
    }

    for (const auto& [name, h] : snap.histograms) {
      const std::string base = prefix + prom_sanitize(name);
      Family& f = families[base];
      f.type = "histogram";
      std::uint64_t cum = 0;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        cum += h.counts[i];
        const std::string le =
            i < h.bounds.size() ? fmt_double(h.bounds[i]) : "+Inf";
        f.samples.push_back(base + "_bucket" +
                            sample_labels(src.labels, "le=\"" + le + "\"") +
                            " " + std::to_string(cum));
      }
      f.samples.push_back(base + "_sum" + sample_labels(src.labels) + " " +
                          fmt_double(h.sum));
      f.samples.push_back(base + "_count" + sample_labels(src.labels) + " " +
                          std::to_string(h.count));
    }
  }

  std::string out;
  for (const auto& [fam, f] : families) {
    out += "# TYPE " + fam + " " + f.type + "\n";
    for (const std::string& s : f.samples) {
      out += s;
      out += "\n";
    }
  }
  return out;
}

std::string to_prometheus(const Registry& registry, const std::string& prefix) {
  return to_prometheus({PromSource{"", &registry}}, prefix);
}

}  // namespace fcrit::obs
