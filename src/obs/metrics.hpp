// Process-wide metrics substrate: counters, gauges and fixed-bucket
// latency histograms, all lock-free on the hot path.
//
// Instruments are owned by a Registry and live for its lifetime, so a hot
// loop resolves the name once (mutex-guarded map lookup) and then records
// through a stable reference with nothing but relaxed atomic updates. The
// process-wide registry() holds the pipeline/simulator/trainer
// instruments; the serve ScoringEngine owns a private Registry per
// instance so concurrent engines (tests spin up several) never mix
// counts. Registry::to_json() is the snapshot format behind the daemon's
// METRICS command and the CI smoke checks.
//
// Histogram percentile semantics: observations land in fixed buckets
// (default: a 1-2-5 latency ladder in milliseconds, 1 µs .. 10 s, plus an
// overflow bucket). percentile() returns the upper bound of the bucket the
// rank falls in, clamped into [min, max] of everything observed — so an
// empty histogram reports 0, a single-sample histogram reports that
// sample exactly, and the overflow bucket reports the observed maximum.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/util/thread_annotations.hpp"

namespace fcrit::obs {

/// Monotonic event count. All updates are relaxed: totals are exact once
/// the writers are quiesced, momentarily approximate while they run.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time level (queue depth, live connections) with a monotonic
/// high-water mark.
class Gauge {
 public:
  void set(std::int64_t v);
  void add(std::int64_t delta);
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  std::int64_t high_water() const {
    return max_.load(std::memory_order_relaxed);
  }

 private:
  void raise_high_water(std::int64_t v);

  std::atomic<std::int64_t> v_{0};
  std::atomic<std::int64_t> max_{0};
};

/// The default fixed bucket ladder: 1-2-5 steps from 0.001 ms to 10000 ms.
const std::vector<double>& default_latency_buckets_ms();

/// A coherent-enough copy of a Histogram. Fields are read in an order that
/// keeps derived statistics conservative under concurrent writers: sum is
/// read before count and max after it, so mean() can momentarily
/// under-report but never exceeds the true maximum (the torn-read bug the
/// serve engine's hand-rolled atomics had).
struct HistogramSnapshot {
  std::vector<double> bounds;          // bucket upper bounds
  std::vector<std::uint64_t> counts;   // bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  // 0 when empty
  double max = 0.0;  // 0 when empty

  double mean() const { return count == 0 ? 0.0 : sum / double(count); }
  /// p in [0, 100]; see the header comment for the bucket semantics.
  double percentile(double p) const;
};

class Histogram {
 public:
  /// `bounds` must be strictly increasing; observations above the last
  /// bound land in the overflow bucket.
  explicit Histogram(std::vector<double> bounds = default_latency_buckets_ms());

  void observe(double value);
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// A point-in-time copy of every instrument in a Registry. This is the
/// substrate behind both JSON rendering (Registry::to_json) and the
/// Prometheus text exposition (obs::to_prometheus): taking it never blocks
/// recording threads — only the name-map mutex is held, and only while
/// collecting instrument pointers.
struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

struct RegistrySnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// Named instruments with stable addresses: the first lookup of a name
/// creates the instrument, every later lookup (any thread) returns the
/// same reference. Lookups take a mutex; recording does not.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  RegistrySnapshot snapshot() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Histograms carry count/sum/min/max/mean/p50/p90/p99, the full bucket
  /// ladder ("bounds" upper bounds and per-bucket "counts", overflow last)
  /// plus the non-empty buckets as [upper_bound, count] pairs.
  std::string to_json() const;

 private:
  mutable util::Mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mutex_);
};

/// Histogram summary as a JSON object (shared by Registry::to_json and the
/// serve engine's METRICS snapshot).
std::string histogram_json(const HistogramSnapshot& h);

/// The process-wide registry (pipeline, simulator, trainer instruments).
Registry& registry();

}  // namespace fcrit::obs
