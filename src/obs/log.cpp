#include "src/obs/log.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "src/util/text.hpp"

namespace fcrit::obs {

namespace {

std::atomic<int>& level_slot() {
  static std::atomic<int>* slot = [] {
    auto* s = new std::atomic<int>(static_cast<int>(LogLevel::kInfo));
    if (const char* env = std::getenv("FCRIT_LOG"))
      s->store(static_cast<int>(parse_log_level(env, LogLevel::kInfo)),
               std::memory_order_relaxed);
    return s;
  }();
  return *slot;
}

}  // namespace

LogLevel parse_log_level(std::string_view name, LogLevel fallback) {
  const std::string lower = util::to_lower(util::trim(name));
  if (lower == "error") return LogLevel::kError;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "trace") return LogLevel::kTrace;
  return fallback;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "error";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kInfo: return "info";
    case LogLevel::kDebug: return "debug";
    case LogLevel::kTrace: return "trace";
  }
  return "info";
}

LogLevel log_level() {
  return static_cast<LogLevel>(level_slot().load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) {
  level_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_enabled(LogLevel level) {
  return static_cast<int>(level) <=
         level_slot().load(std::memory_order_relaxed);
}

void logf(LogLevel level, const char* fmt, ...) {
  if (!log_enabled(level)) return;
  char buffer[1024];
  std::va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  std::fprintf(stderr, "fcrit %s: %s\n", log_level_name(level), buffer);
}

}  // namespace fcrit::obs
