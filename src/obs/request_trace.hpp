// Request-scoped tracing for the serving tier: one RequestTrace per SCORE
// request, carrying named spans (queue_wait, batch_assembly, bundle_load,
// golden_sim, forward), point events (reroute, busy_shed) and the trace
// ids this request was coalesced with into a block-diagonal forward.
//
// The collector is the single rendezvous between the router, the shard
// engines and the daemon front end: the router (or the server, for a
// client-supplied id= token) calls begin(), every layer that touches the
// request records spans against the 64-bit id, and whoever owns the
// request's outcome calls finish(). Finished traces move into a bounded
// in-memory ring served by the TRACE <id> / TRACE LAST <n> daemon verbs,
// and optionally append one JSONL wide event per request to an access log
// (open_access_log), with slow/shed/errored requests mirrored to the
// leveled logger once a --slow-ms threshold is set.
//
// Contract (same as the phase Tracer): when tracing is disabled, every
// call on the hot path costs exactly one relaxed atomic load. When
// enabled, mutations take a mutex — request granularity (a handful of
// spans around multi-millisecond sim/forward work), not kernel
// granularity, so contention is negligible next to the work being traced.
//
// Trace ids are emitted as decimal *strings* in JSON: they use the full
// 64-bit range, which does not survive an IEEE-double JSON parser.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/util/thread_annotations.hpp"

namespace fcrit::obs {

using TraceClock = std::chrono::steady_clock;

/// One timed stage of a request, offsets in milliseconds since the
/// request's begin().
struct TraceSpan {
  std::string name;
  double start_ms = 0.0;
  double dur_ms = 0.0;
  std::string detail;  // "cache-hit", "jobs=3 unique=2", shard names, ...
};

struct RequestTrace {
  std::uint64_t id = 0;
  std::string bundle;
  std::string target;
  std::string shard;    // owning shard at completion ("", for the daemon)
  std::string verdict;  // "ok" | "error" | "shed" | "no-shard"
  std::string error;    // message when verdict != ok
  std::uint32_t retries = 0;
  std::vector<std::uint64_t> peers;  // trace ids coalesced into one forward
  std::vector<TraceSpan> spans;
  double total_ms = 0.0;
  std::uint64_t start_unix_ms = 0;  // wall clock at begin(), for humans
  TraceClock::time_point t0;        // span offsets are relative to this
};

/// One RequestTrace as a single-line JSON object (the wide-event shape the
/// access log appends and the TRACE verb returns).
std::string request_trace_json(const RequestTrace& t);

class RequestTraceCollector {
 public:
  explicit RequestTraceCollector(std::size_t ring_capacity = 256);
  ~RequestTraceCollector();

  RequestTraceCollector(const RequestTraceCollector&) = delete;
  RequestTraceCollector& operator=(const RequestTraceCollector&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Start a trace; returns its id (generated, or `client_id` when the
  /// SCORE line carried an id= token), 0 when tracing is disabled or the
  /// active table is saturated (the request proceeds untraced).
  std::uint64_t begin(const std::string& bundle, const std::string& target,
                      std::uint64_t client_id = 0);

  /// Record a completed span against an active trace. All mutators are
  /// no-ops when disabled or id == 0, so call sites never branch.
  void span(std::uint64_t id, const std::string& name,
            TraceClock::time_point start, TraceClock::time_point end,
            const std::string& detail = "");
  /// A point-in-time event (reroute, busy_shed): zero-duration span at now.
  void event(std::uint64_t id, const std::string& name,
             const std::string& detail = "");
  void set_shard(std::uint64_t id, const std::string& shard);
  void add_retry(std::uint64_t id);
  /// Record the other trace ids coalesced into the same forward. `self` is
  /// filtered out, so callers pass the whole batch's id list to each peer.
  void add_peers(std::uint64_t id, const std::vector<std::uint64_t>& batch);

  /// Complete the trace: stamps total_ms, moves it from the active table
  /// into the ring, appends the wide event to the access log (if open) and
  /// mirrors slow/shed/errored requests to the logger (if slow-ms is set).
  void finish(std::uint64_t id, const std::string& verdict,
              const std::string& error = "");

  /// Ring accessors (finished traces only, oldest evicted first).
  std::optional<RequestTrace> find(std::uint64_t id) const;
  std::vector<RequestTrace> last(std::size_t n) const;
  std::size_t ring_size() const;
  std::size_t ring_capacity() const { return ring_capacity_; }
  /// Finished traces evicted from the ring so far.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  std::size_t active_size() const;

  /// Open (append) the JSONL wide-event access log. Returns false and
  /// leaves logging off when the file cannot be opened.
  bool open_access_log(const std::string& path);
  /// Mirror requests slower than `ms` — and every shed/errored request —
  /// to the leveled logger at warn. Negative disables (the default).
  void set_slow_ms(double ms) { slow_ms_.store(ms, std::memory_order_relaxed); }
  double slow_ms() const { return slow_ms_.load(std::memory_order_relaxed); }

 private:
  std::uint64_t next_id();
  void write_wide_event(const RequestTrace& t);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> seq_{0};
  std::uint64_t id_seed_ = 0;
  std::size_t ring_capacity_;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<double> slow_ms_{-1.0};

  mutable util::Mutex mutex_;
  std::unordered_map<std::uint64_t, RequestTrace> active_ GUARDED_BY(mutex_);
  std::deque<RequestTrace> ring_ GUARDED_BY(mutex_);

  util::Mutex log_mutex_;  // access-log file handle
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> log_ GUARDED_BY(log_mutex_);
};

}  // namespace fcrit::obs
