#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/obs/json.hpp"

namespace fcrit::obs {

namespace {

/// Relaxed CAS add for atomic<double> (fetch_add over doubles is not
/// universally lock-free; the CAS loop is, on every target we build for).
void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Gauge::set(std::int64_t v) {
  v_.store(v, std::memory_order_relaxed);
  raise_high_water(v);
}

void Gauge::add(std::int64_t delta) {
  raise_high_water(v_.fetch_add(delta, std::memory_order_relaxed) + delta);
}

void Gauge::raise_high_water(std::int64_t v) {
  std::int64_t cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

const std::vector<double>& default_latency_buckets_ms() {
  static const std::vector<double> kBuckets = {
      0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1,  0.2,  0.5,  1.0,  2.0,
      5.0,   10.0,  20.0,  50.0, 100., 200., 500., 1e3,  2e3,  5e3,  1e4};
  return kBuckets;
}

double HistogramSnapshot::percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(p / 100.0 * double(count))));
  std::uint64_t cum = 0;
  double value = max;  // rank beyond the bounded buckets -> overflow -> max
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cum += counts[i];
    if (cum >= rank) {
      value = i < bounds.size() ? bounds[i] : max;
      break;
    }
  }
  return std::clamp(value, min, max);
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument(
        "Histogram bounds must be strictly increasing");
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  // Order matters for snapshot coherence (see HistogramSnapshot): buckets
  // and extrema first, sum next, the sample count last.
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_min(min_, value);
  atomic_max(max_, value);
  atomic_add(sum_, value);
  count_.fetch_add(1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  // Mirror order of observe(): sum before count keeps mean() <= true mean;
  // extrema and buckets after count keep them supersets of the counted
  // samples, so percentile() and mean() never exceed the observed max.
  s.sum = sum_.load(std::memory_order_relaxed);
  s.count = count_.load(std::memory_order_relaxed);
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  s.min = s.count == 0 || !std::isfinite(lo) ? 0.0 : lo;
  s.max = s.count == 0 || !std::isfinite(hi) ? 0.0 : hi;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_)
    s.counts.push_back(c.load(std::memory_order_relaxed));
  return s;
}

Counter& Registry::counter(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  util::MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  return histogram(name, default_latency_buckets_ms());
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  util::MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string histogram_json(const HistogramSnapshot& h) {
  std::string out = "{";
  out += "\"count\":" + std::to_string(h.count);
  out += ",\"sum\":" + json_number(h.sum);
  out += ",\"min\":" + json_number(h.min);
  out += ",\"max\":" + json_number(h.max);
  out += ",\"mean\":" + json_number(h.mean());
  out += ",\"p50\":" + json_number(h.percentile(50));
  out += ",\"p90\":" + json_number(h.percentile(90));
  out += ",\"p99\":" + json_number(h.percentile(99));
  // The full ladder, empty buckets included: "bounds" are the bucket upper
  // bounds and "counts" has one extra trailing entry for the overflow
  // bucket. Consumers that need cumulative buckets (Prometheus) or exact
  // shapes re-derive them from these; "buckets" below stays the compact
  // non-empty view the older CI checks read.
  out += ",\"bounds\":[";
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (i != 0) out += ",";
    out += json_number(h.bounds[i]);
  }
  out += "],\"counts\":[";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (i != 0) out += ",";
    out += std::to_string(h.counts[i]);
  }
  out += "],\"buckets\":[";
  bool first = true;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (h.counts[i] == 0) continue;
    if (!first) out += ",";
    first = false;
    const double le = i < h.bounds.size()
                          ? h.bounds[i]
                          : std::numeric_limits<double>::infinity();
    out += "[" + (std::isfinite(le) ? json_number(le) : json_string("inf")) +
           "," + std::to_string(h.counts[i]) + "]";
  }
  out += "]}";
  return out;
}

RegistrySnapshot Registry::snapshot() const {
  // Snapshot the instrument pointers under the lock, read values outside:
  // instruments are never deleted, and recording never takes this mutex.
  std::map<std::string, const Counter*> counters;
  std::map<std::string, const Gauge*> gauges;
  std::map<std::string, const Histogram*> histograms;
  {
    util::MutexLock lock(mutex_);
    for (const auto& [name, c] : counters_) counters[name] = c.get();
    for (const auto& [name, g] : gauges_) gauges[name] = g.get();
    for (const auto& [name, h] : histograms_) histograms[name] = h.get();
  }
  RegistrySnapshot s;
  for (const auto& [name, c] : counters) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges)
    s.gauges[name] = GaugeSnapshot{g->value(), g->high_water()};
  for (const auto& [name, h] : histograms) s.histograms[name] = h->snapshot();
  return s;
}

std::string Registry::to_json() const {
  const RegistrySnapshot snap = snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":" + std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : snap.gauges) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":{\"value\":" + std::to_string(g.value) +
           ",\"high_water\":" + std::to_string(g.high_water) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out += ",";
    first = false;
    out += json_string(name) + ":" + histogram_json(h);
  }
  out += "}}";
  return out;
}

Registry& registry() {
  static Registry* instance = new Registry();  // never destroyed: worker
  return *instance;  // threads may record during static teardown
}

}  // namespace fcrit::obs
