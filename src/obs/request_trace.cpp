#include "src/obs/request_trace.hpp"

#include <algorithm>
#include <cinttypes>

#include "src/obs/json.hpp"
#include "src/obs/log.hpp"

namespace fcrit::obs {

namespace {

// How many begun-but-unfinished traces we are willing to hold. A layer
// that begins a trace always finishes it, so this only matters if a caller
// leaks ids; saturation makes begin() return 0 (request runs untraced)
// instead of growing without bound.
constexpr std::size_t kMaxActive = 4096;

double ms_between(TraceClock::time_point a, TraceClock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string request_trace_json(const RequestTrace& t) {
  std::string out = "{\"id\":" + json_string(std::to_string(t.id));
  out += ",\"bundle\":" + json_string(t.bundle);
  out += ",\"target\":" + json_string(t.target);
  out += ",\"shard\":" + json_string(t.shard);
  out += ",\"verdict\":" + json_string(t.verdict);
  out += ",\"error\":" + json_string(t.error);
  out += ",\"retries\":" + std::to_string(t.retries);
  out += ",\"start_unix_ms\":" + std::to_string(t.start_unix_ms);
  out += ",\"total_ms\":" + json_number(t.total_ms);
  out += ",\"batched_with\":[";
  for (std::size_t i = 0; i < t.peers.size(); ++i) {
    if (i != 0) out += ",";
    out += json_string(std::to_string(t.peers[i]));
  }
  out += "],\"spans\":[";
  for (std::size_t i = 0; i < t.spans.size(); ++i) {
    const TraceSpan& s = t.spans[i];
    if (i != 0) out += ",";
    out += "{\"name\":" + json_string(s.name);
    out += ",\"start_ms\":" + json_number(s.start_ms);
    out += ",\"dur_ms\":" + json_number(s.dur_ms);
    if (!s.detail.empty()) out += ",\"detail\":" + json_string(s.detail);
    out += "}";
  }
  out += "]}";
  return out;
}

RequestTraceCollector::RequestTraceCollector(std::size_t ring_capacity)
    : ring_capacity_(std::max<std::size_t>(1, ring_capacity)),
      log_(nullptr, &std::fclose) {
  // Seed id generation off the collector's address and construction time:
  // ids must be unique within a process run and unlikely to collide across
  // runs, nothing stronger.
  id_seed_ = splitmix64(reinterpret_cast<std::uintptr_t>(this) ^
                        static_cast<std::uint64_t>(
                            TraceClock::now().time_since_epoch().count()));
}

RequestTraceCollector::~RequestTraceCollector() = default;

std::uint64_t RequestTraceCollector::next_id() {
  // splitmix64 over a counter: sequential inputs, well-mixed 64-bit
  // outputs. 0 is reserved as "untraced"; remix until nonzero.
  std::uint64_t id = 0;
  while (id == 0)
    id = splitmix64(id_seed_ + seq_.fetch_add(1, std::memory_order_relaxed));
  return id;
}

std::uint64_t RequestTraceCollector::begin(const std::string& bundle,
                                           const std::string& target,
                                           std::uint64_t client_id) {
  if (!enabled()) return 0;
  const std::uint64_t id = client_id != 0 ? client_id : next_id();
  RequestTrace t;
  t.id = id;
  t.bundle = bundle;
  t.target = target;
  t.t0 = TraceClock::now();
  t.start_unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  util::MutexLock lock(mutex_);
  if (active_.size() >= kMaxActive && !active_.count(id)) return 0;
  active_[id] = std::move(t);  // a reused client id restarts its trace
  return id;
}

void RequestTraceCollector::span(std::uint64_t id, const std::string& name,
                                 TraceClock::time_point start,
                                 TraceClock::time_point end,
                                 const std::string& detail) {
  if (!enabled() || id == 0) return;
  util::MutexLock lock(mutex_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  TraceSpan s;
  s.name = name;
  s.start_ms = ms_between(it->second.t0, start);
  s.dur_ms = ms_between(start, end);
  s.detail = detail;
  it->second.spans.push_back(std::move(s));
}

void RequestTraceCollector::event(std::uint64_t id, const std::string& name,
                                  const std::string& detail) {
  const auto now = TraceClock::now();
  span(id, name, now, now, detail);
}

void RequestTraceCollector::set_shard(std::uint64_t id,
                                      const std::string& shard) {
  if (!enabled() || id == 0) return;
  util::MutexLock lock(mutex_);
  auto it = active_.find(id);
  if (it != active_.end()) it->second.shard = shard;
}

void RequestTraceCollector::add_retry(std::uint64_t id) {
  if (!enabled() || id == 0) return;
  util::MutexLock lock(mutex_);
  auto it = active_.find(id);
  if (it != active_.end()) ++it->second.retries;
}

void RequestTraceCollector::add_peers(std::uint64_t id,
                                      const std::vector<std::uint64_t>& batch) {
  if (!enabled() || id == 0) return;
  util::MutexLock lock(mutex_);
  auto it = active_.find(id);
  if (it == active_.end()) return;
  for (std::uint64_t peer : batch) {
    if (peer == 0 || peer == id) continue;
    auto& peers = it->second.peers;
    if (std::find(peers.begin(), peers.end(), peer) == peers.end())
      peers.push_back(peer);
  }
}

void RequestTraceCollector::finish(std::uint64_t id, const std::string& verdict,
                                   const std::string& error) {
  if (!enabled() || id == 0) return;
  RequestTrace done;
  {
    util::MutexLock lock(mutex_);
    auto it = active_.find(id);
    if (it == active_.end()) return;
    done = std::move(it->second);
    active_.erase(it);
    done.verdict = verdict;
    done.error = error;
    done.total_ms = ms_between(done.t0, TraceClock::now());
    ring_.push_back(done);
    while (ring_.size() > ring_capacity_) {
      ring_.pop_front();
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Serialization and file/logger I/O happen outside the ring mutex so a
  // slow disk never stalls span recording on the scoring path.
  write_wide_event(done);
}

std::optional<RequestTrace> RequestTraceCollector::find(
    std::uint64_t id) const {
  util::MutexLock lock(mutex_);
  // Newest first: a reused client id should resolve to its latest request.
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it)
    if (it->id == id) return *it;
  return std::nullopt;
}

std::vector<RequestTrace> RequestTraceCollector::last(std::size_t n) const {
  util::MutexLock lock(mutex_);
  const std::size_t take = std::min(n, ring_.size());
  // Newest first — the order a human paging through TRACE LAST wants.
  std::vector<RequestTrace> out;
  out.reserve(take);
  for (auto it = ring_.rbegin(); it != ring_.rbegin() + static_cast<long>(take);
       ++it)
    out.push_back(*it);
  return out;
}

std::size_t RequestTraceCollector::ring_size() const {
  util::MutexLock lock(mutex_);
  return ring_.size();
}

std::size_t RequestTraceCollector::active_size() const {
  util::MutexLock lock(mutex_);
  return active_.size();
}

bool RequestTraceCollector::open_access_log(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (!f) {
    logf(LogLevel::kWarn, "cannot open access log %s", path.c_str());
    return false;
  }
  util::MutexLock lock(log_mutex_);
  log_.reset(f);
  return true;
}

void RequestTraceCollector::write_wide_event(const RequestTrace& t) {
  const double slow = slow_ms();
  const bool mirror =
      slow >= 0.0 && (t.verdict != "ok" || t.total_ms >= slow);
  std::string line;
  {
    util::MutexLock lock(log_mutex_);
    if (log_) {
      line = request_trace_json(t);
      line += '\n';
      std::fwrite(line.data(), 1, line.size(), log_.get());
      std::fflush(log_.get());
    }
  }
  if (mirror) {
    logf(LogLevel::kWarn,
         "request id=%" PRIu64
         " verdict=%s bundle=%s shard=%s total_ms=%.3f retries=%u%s%s",
         t.id, t.verdict.c_str(), t.bundle.c_str(), t.shard.c_str(),
         t.total_ms, t.retries, t.error.empty() ? "" : " error=",
         t.error.c_str());
  }
}

}  // namespace fcrit::obs
