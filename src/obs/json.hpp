// Minimal JSON emission + validation helpers for the observability layer.
//
// The repo's machine-readable outputs (METRICS snapshots, Chrome trace
// files, BENCH_*.json) are assembled by hand from these escape/number
// helpers; json_valid() is the matching strict checker the tests and the
// CI smoke step use to guarantee every emitted document actually parses.
// Deliberately not a parser — nothing is materialized.
#pragma once

#include <string>
#include <string_view>

namespace fcrit::obs {

/// Escape a string for embedding inside JSON quotes (the quotes themselves
/// are not included).
std::string json_escape(std::string_view s);

/// `"s"` with escaping applied.
std::string json_string(std::string_view s);

/// Format a finite double as a JSON number; NaN/Inf (not representable in
/// JSON) become 0.
std::string json_number(double v);

/// Strict recursive-descent validity check of one complete JSON document
/// (RFC 8259 value grammar, \uXXXX escapes included). True only when the
/// whole input is exactly one valid value plus surrounding whitespace.
bool json_valid(std::string_view text);

}  // namespace fcrit::obs
