// Phase-scoped tracing: RAII spans that nest, record wall time + thread
// id, and export Chrome trace-event JSON (chrome://tracing, Perfetto).
//
// The Tracer is a process-wide singleton that is off by default: a Span
// constructed while tracing is disabled costs one relaxed atomic load and
// records nothing, so the pipeline stays instrumented permanently and
// pays only when someone asks for a trace (`fcrit pipeline --trace-out`).
// Spans emit "X" (complete) events; nesting falls out of the begin/end
// timestamps, so no per-thread stack is kept and spans may close on a
// different thread than they opened on.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/thread_annotations.hpp"

namespace fcrit::obs {

struct TraceEvent {
  std::string name;
  std::uint64_t ts_us = 0;   // start, microseconds since Tracer::start()
  std::uint64_t dur_us = 0;  // duration, microseconds
  int tid = 0;               // small dense per-thread id
};

class Tracer {
 public:
  static Tracer& instance();

  /// Enable collection, dropping any previously collected events.
  void start();
  void stop() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void record(TraceEvent event);
  std::vector<TraceEvent> events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  void write_chrome_trace(std::ostream& os) const;
  /// Convenience: write to `path`; false when the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

  std::chrono::steady_clock::time_point epoch() const { return epoch_; }

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_{};
  mutable util::Mutex mutex_;
  std::vector<TraceEvent> events_ GUARDED_BY(mutex_);
};

/// RAII phase span against the global Tracer. Records on destruction when
/// tracing was enabled at construction; otherwise near-free.
class Span {
 public:
  explicit Span(std::string name);
  ~Span() { close(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// End the span before scope exit (idempotent).
  void close();

 private:
  std::string name_;
  bool active_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace fcrit::obs
