// Leveled logging with one sink (stderr), so the trainer/pipeline chatter
// that used to go straight to stdout flows through a single switchable
// valve.
//
// The active level comes from, in priority order: set_log_level() (the
// CLI's --verbose/--quiet), the FCRIT_LOG environment variable
// (error|warn|info|debug|trace), and the kInfo default. Call sites guard
// with log_enabled() when building the message is itself expensive;
// logf() re-checks, so a plain call is always safe.
#pragma once

#include <string_view>

namespace fcrit::obs {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Name -> level, case-insensitive; unknown names return `fallback`.
LogLevel parse_log_level(std::string_view name, LogLevel fallback);
const char* log_level_name(LogLevel level);

LogLevel log_level();
void set_log_level(LogLevel level);
bool log_enabled(LogLevel level);

/// printf-style message to stderr as "fcrit <level>: <message>\n",
/// dropped when `level` is above the active level.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void logf(LogLevel level, const char* fmt, ...);

}  // namespace fcrit::obs
